open Wsp_sim

type config = {
  levels : Cache.config list;
  memory_latency : Time.t;
  memory_bandwidth : Units.Bandwidth.t;
  memory_write_bandwidth : Units.Bandwidth.t;
  nt_store_latency : Time.t;
  fence_latency : Time.t;
  clflush_issue : Time.t;
  wbinvd_line_walk : Time.t;
}

type t = {
  cfg : config;
  levels : Cache.t array;  (* levels.(0) is L1; last is the LLC. *)
  line_size : int;
  mutable on_writeback : line:int -> unit;
}

let create ?(on_writeback = fun ~line:_ -> ()) (cfg : config) =
  (match cfg.levels with
  | [] -> invalid_arg "Hierarchy.create: no levels"
  | first :: rest ->
      List.iter
        (fun (l : Cache.config) ->
          if l.line_size <> first.line_size then
            invalid_arg "Hierarchy.create: mismatched line sizes")
        rest);
  let levels = Array.of_list (List.map Cache.create cfg.levels) in
  let line_size = (List.hd cfg.levels).Cache.line_size in
  { cfg; levels; line_size; on_writeback }

let config t = t.cfg
let line_size t = t.line_size
let set_on_writeback t f = t.on_writeback <- f
let llc t = t.levels.(Array.length t.levels - 1)
let line_of t addr = addr / t.line_size

(* Evicting [victim] from level [i]: inclusion requires dropping it from
   all upper levels too, accumulating dirtiness. If level [i] is the LLC
   the line leaves the hierarchy and a dirty victim is written back;
   otherwise it is demoted into level [i+1] (where inclusion normally
   means it is already present — if not, it is re-inserted, which may
   cascade). *)
let rec evict_from t i (victim : Cache.victim) =
  let dirty = ref victim.dirty in
  for j = 0 to i - 1 do
    if Cache.invalidate t.levels.(j) ~line:victim.line then dirty := true
  done;
  if i = Array.length t.levels - 1 then begin
    if !dirty then t.on_writeback ~line:victim.line
  end
  else
    let below = t.levels.(i + 1) in
    if Cache.contains below ~line:victim.line then begin
      if !dirty then Cache.set_dirty below ~line:victim.line
    end
    else
      match Cache.insert below ~line:victim.line ~dirty:!dirty with
      | None -> ()
      | Some v -> evict_from t (i + 1) v

(* Fills [line] into levels [0..upto], lowest level first so that
   inclusion holds while upper-level evictions demote downwards. *)
let fill t ~line ~upto =
  for i = upto downto 0 do
    if not (Cache.contains t.levels.(i) ~line) then
      match Cache.insert t.levels.(i) ~line ~dirty:false with
      | None -> ()
      | Some v -> evict_from t i v
  done

(* Probes levels in order; returns (hit_level option, accumulated probe
   latency). A hit at level k costs the sum of hit latencies of levels
   0..k; a full miss additionally costs memory latency. *)
let probe_chain t line =
  let n = Array.length t.levels in
  let rec go i latency =
    if i >= n then (None, Time.add latency t.cfg.memory_latency)
    else
      let level = t.levels.(i) in
      let latency = Time.add latency (Cache.config level).Cache.hit_latency in
      if Cache.probe level ~line then (Some i, latency) else go (i + 1) latency
  in
  go 0 Time.zero

let access t ~addr ~write =
  let line = line_of t addr in
  let hit, latency = probe_chain t line in
  (match hit with
  | Some k -> if k > 0 then fill t ~line ~upto:(k - 1)
  | None -> fill t ~line ~upto:(Array.length t.levels - 1));
  if write then Cache.set_dirty t.levels.(0) ~line;
  latency

let load t ~addr = access t ~addr ~write:false
let store t ~addr = access t ~addr ~write:true

let invalidate_line t line =
  let dirty = ref false in
  Array.iter
    (fun level -> if Cache.invalidate level ~line then dirty := true)
    t.levels;
  !dirty

let store_nt t ~addr =
  let line = line_of t addr in
  (* Any cached copy is flushed first so the line's pre-existing dirty
     bytes are not lost when the caller writes directly to backing. *)
  if invalidate_line t line then t.on_writeback ~line;
  t.cfg.nt_store_latency

let fence t = t.cfg.fence_latency

let clflush t ~addr =
  let line = line_of t addr in
  let dirty = invalidate_line t line in
  if dirty then t.on_writeback ~line;
  let latency = t.cfg.clflush_issue in
  if dirty then
    Time.add latency
      (Units.Bandwidth.transfer_time t.cfg.memory_write_bandwidth t.line_size)
  else latency

let flush_lines t ~addr ~len =
  if len <= 0 then Time.zero
  else begin
    let first = line_of t addr and last = line_of t (addr + len - 1) in
    let total = ref Time.zero in
    for line = first to last do
      let byte = line * t.line_size in
      total := Time.add !total (clflush t ~addr:byte)
    done;
    !total
  end

let dirty_lines t =
  (* The union is exact because inclusion merges dirty bits downwards;
     still, a line can be dirty at several levels simultaneously. *)
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun level ->
      List.iter
        (fun line -> if not (Hashtbl.mem seen line) then Hashtbl.add seen line ())
        (Cache.dirty_lines level))
    t.levels;
  Hashtbl.fold (fun line () acc -> line :: acc) seen []

let dirty_bytes t = List.length (dirty_lines t) * t.line_size

let resident_lines t =
  (* Distinct lines present anywhere; by inclusion this is the LLC count. *)
  Cache.resident_count (llc t)

let total_line_slots t =
  Array.fold_left (fun acc level -> acc + Cache.line_count level) 0 t.levels

let flush_all t =
  let dirty = dirty_lines t in
  List.iter (fun line -> t.on_writeback ~line) dirty;
  Array.iter Cache.clear t.levels;
  let walk = Time.mul t.cfg.wbinvd_line_walk (total_line_slots t) in
  let transfer =
    Units.Bandwidth.transfer_time t.cfg.memory_write_bandwidth
      (List.length dirty * t.line_size)
  in
  Time.add walk transfer

let drop_volatile t = Array.iter Cache.clear t.levels
