(** Physical quantities used throughout the simulator.

    All electrical quantities are floats in SI units. The modules exist to
    make call sites self-documenting ([Units.Power.watts 400.]) and to
    centralise the handful of derived-quantity computations (capacitor
    energy, discharge under constant power) used by the power substrate. *)

module Power : sig
  type t = float
  (** Watts. *)

  val watts : float -> t
  val to_watts : t -> float
  val pp : Format.formatter -> t -> unit
end

module Energy : sig
  type t = float
  (** Joules. *)

  val joules : float -> t
  val to_joules : t -> float

  val of_power_time : Power.t -> Time.t -> t
  (** Energy delivered by a constant power draw over a span. *)

  val duration_at : t -> Power.t -> Time.t
  (** [duration_at e p] is how long energy [e] lasts at constant draw [p]. *)

  val pp : Format.formatter -> t -> unit
end

module Voltage : sig
  type t = float
  (** Volts. *)

  val volts : float -> t
  val to_volts : t -> float
  val pp : Format.formatter -> t -> unit
end

module Capacitance : sig
  type t = float
  (** Farads. *)

  val farads : float -> t
  val to_farads : t -> float

  val stored_energy : t -> Voltage.t -> Energy.t
  (** [stored_energy c v] is ½·c·v². *)

  val voltage_after_discharge : t -> v0:Voltage.t -> drawn:Energy.t -> Voltage.t
  (** Voltage remaining after removing [drawn] joules from a capacitor
      charged to [v0]; 0 V once the stored energy is exhausted. *)

  val pp : Format.formatter -> t -> unit
end

module Size : sig
  type t = int
  (** Bytes. Sizes in this simulator always fit comfortably in an [int]. *)

  val bytes : int -> t
  val kib : int -> t
  val mib : int -> t
  val gib : int -> t
  val to_bytes : t -> int
  val to_mib : t -> float
  val to_gib : t -> float
  val pp : Format.formatter -> t -> unit
end

module Bandwidth : sig
  type t = float
  (** Bytes per second. *)

  val bytes_per_s : float -> t
  val mib_per_s : float -> t
  val gib_per_s : float -> t
  val to_bytes_per_s : t -> float

  val transfer_time : t -> Size.t -> Time.t
  (** Time to move [size] bytes at this bandwidth. *)

  val pp : Format.formatter -> t -> unit
end
