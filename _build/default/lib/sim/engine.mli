(** The discrete-event simulation engine.

    An engine owns a clock and an event queue. Handlers run at their
    scheduled timestamp with the clock already advanced; a handler may
    schedule further events (at or after the current time) and cancel
    pending ones. The engine is single-threaded and deterministic: equal
    timestamps fire in scheduling order. *)

type t

type event_id = Event_queue.id

val create : ?now:Time.t -> unit -> t

val now : t -> Time.t
(** Current simulated time. *)

val schedule : t -> after:Time.t -> (t -> unit) -> event_id
(** [schedule t ~after f] runs [f] at [now t + after]. [after] must be
    non-negative. *)

val schedule_at : t -> at:Time.t -> (t -> unit) -> event_id
(** [schedule_at t ~at f] runs [f] at absolute time [at], which must not
    be in the past. *)

val cancel : t -> event_id -> unit

val pending : t -> int
(** Number of events still scheduled. *)

val step : t -> bool
(** Runs the next event. [false] when the queue was empty. *)

val run : t -> unit
(** Runs until the queue is empty. *)

val run_until : t -> Time.t -> unit
(** Runs every event scheduled strictly before or at the given time, then
    advances the clock to exactly that time. *)

val advance : t -> Time.t -> unit
(** [advance t span] moves the clock forward by [span] without running
    events; used by sequential (non-event) code charging simulated work.
    Raises [Invalid_argument] if that would jump past a pending event. *)
