type t = { mutable clock : Time.t; queue : (t -> unit) Event_queue.t }
type event_id = Event_queue.id

let create ?(now = Time.zero) () = { clock = now; queue = Event_queue.create () }
let now t = t.clock

let schedule_at t ~at f =
  if Time.(at < t.clock) then
    invalid_arg
      (Fmt.str "Engine.schedule_at: %a is before now (%a)" Time.pp at Time.pp
         t.clock);
  Event_queue.push t.queue ~at f

let schedule t ~after f =
  if Time.is_negative after then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(Time.add t.clock after) f

let cancel t id = Event_queue.cancel t.queue id
let pending t = Event_queue.length t.queue

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (at, f) ->
      t.clock <- at;
      f t;
      true

let run t =
  while step t do
    ()
  done

let run_until t deadline =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | Some at when Time.(at <= deadline) ->
        ignore (step t);
        loop ()
    | _ -> ()
  in
  loop ();
  if Time.(deadline > t.clock) then t.clock <- deadline

let advance t span =
  if Time.is_negative span then invalid_arg "Engine.advance: negative span";
  let target = Time.add t.clock span in
  (match Event_queue.peek_time t.queue with
  | Some at when Time.(at < target) ->
      invalid_arg "Engine.advance: would skip a pending event"
  | _ -> ());
  t.clock <- target
