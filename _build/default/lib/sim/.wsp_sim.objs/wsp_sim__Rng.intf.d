lib/sim/rng.mli:
