lib/sim/units.mli: Format Time
