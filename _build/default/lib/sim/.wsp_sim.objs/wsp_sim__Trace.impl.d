lib/sim/trace.ml: Array Stdlib Time
