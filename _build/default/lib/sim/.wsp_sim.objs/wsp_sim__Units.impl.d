lib/sim/units.ml: Fmt Time
