(** Time-series recording of simulated signals.

    A trace is an append-only sequence of (time, value) samples, recorded
    by instruments such as the simulated oscilloscope and rendered by the
    experiment harness. Samples must be appended in non-decreasing time
    order. *)

type t

val create : name:string -> t
val name : t -> string
val record : t -> Time.t -> float -> unit
val length : t -> int

val samples : t -> (Time.t * float) array
(** All samples, oldest first. *)

val value_at : t -> Time.t -> float option
(** Most recent sample at or before the given time (sample-and-hold). *)

val first_crossing_below : t -> threshold:float -> hold:Time.t -> Time.t option
(** [first_crossing_below t ~threshold ~hold] is the earliest sample time
    from which the signal stays below [threshold] for at least [hold]
    (used for the paper's "250 µs below 95 % of nominal" voltage-drop
    rule). *)

val iter : t -> (Time.t -> float -> unit) -> unit
