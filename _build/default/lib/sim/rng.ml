type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used to expand a seed into xoshiro state and to derive
   independent streams for [split]. *)
let splitmix64 state =
  let ( +% ) = Int64.add and ( *% ) = Int64.mul in
  let z = !state +% 0x9E3779B97F4A7C15L in
  state := z;
  let z = Int64.logxor z (Int64.shift_right_logical z 30) *% 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) *% 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_state seed64 =
  let st = ref seed64 in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let create ~seed = of_state (Int64.of_int seed)

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_state (bits64 t)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t bound =
  assert (bound > 0);
  (* 62 random bits keep the value a non-negative OCaml int; rejection
     sampling avoids modulo bias. *)
  let top = 1 lsl 62 in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    let r = v mod bound in
    if v - r > top - bound then draw () else r
  in
  draw ()

let int_in t ~lo ~hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits into [0,1). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v /. 9007199254740992.0 *. bound

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0
let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let exponential t ~mean =
  let u = float t 1.0 in
  -.mean *. log1p (-.u)

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u = 0.0 then nonzero () else u
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

module Zipf = struct
  (* The standard YCSB zipfian generator (Gray et al., "Quickly
     generating billion-record synthetic databases"). *)
  type gen = {
    n : int;
    theta : float;
    alpha : float;
    zetan : float;
    eta : float;
  }

  let zeta n theta =
    let acc = ref 0.0 in
    for i = 1 to n do
      acc := !acc +. (1.0 /. (float_of_int i ** theta))
    done;
    !acc

  let create ?(theta = 0.99) ~n () =
    if n <= 0 then invalid_arg "Zipf.create: n <= 0";
    if theta <= 0.0 || theta >= 1.0 then
      invalid_arg "Zipf.create: theta must be in (0, 1)";
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    {
      n;
      theta;
      alpha = 1.0 /. (1.0 -. theta);
      zetan;
      eta =
        (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
        /. (1.0 -. (zeta2 /. zetan));
    }

  let draw g t =
    let u = float t 1.0 in
    let uz = u *. g.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. (0.5 ** g.theta) then 1
    else
      let r =
        float_of_int g.n *. (((g.eta *. u) -. g.eta +. 1.0) ** g.alpha)
      in
      Stdlib.min (g.n - 1) (Stdlib.max 0 (int_of_float r))

  let n g = g.n
end
