(** Deterministic pseudo-random number generation.

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that experiments are exactly reproducible from a seed, and
    independent components can be given independent streams via [split].
    The generator is xoshiro256** seeded through splitmix64. *)

type t

val create : seed:int -> t
(** A generator deterministically derived from [seed]. *)

val split : t -> t
(** A new generator whose stream is independent of the parent's future
    output. Advances the parent. *)

val copy : t -> t
(** A snapshot: the copy replays exactly the parent's future stream. *)

val bits64 : t -> int64
(** 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val uniform : t -> lo:float -> hi:float -> float

val exponential : t -> mean:float -> float
(** Exponentially distributed, e.g. for inter-arrival times. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normally distributed via Box–Muller. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

module Zipf : sig
  (** A Zipfian rank generator (the YCSB formulation): rank [r] is drawn
      with probability proportional to [1/(r+1)^theta]. Used for
      realistic skewed key popularity in workloads. *)

  type gen

  val create : ?theta:float -> n:int -> unit -> gen
  (** [theta] defaults to 0.99 (YCSB's default skew); [n] is the number
      of ranks. Setup is O(n) (exact zeta computation). *)

  val draw : gen -> t -> int
  (** A rank in [\[0, n)], rank 0 being the most popular. *)

  val n : gen -> int
end
