type t = int64

let zero = 0L
let ps n = Int64.of_int n

let of_float_ps x =
  (* Round to nearest; simulated latencies are non-negative in practice
     but negative spans are allowed for arithmetic intermediates. *)
  Int64.of_float (Float.round x)

let ns x = of_float_ps (x *. 1e3)
let us x = of_float_ps (x *. 1e6)
let ms x = of_float_ps (x *. 1e9)
let s x = of_float_ps (x *. 1e12)
let to_ns t = Int64.to_float t /. 1e3
let to_us t = Int64.to_float t /. 1e6
let to_ms t = Int64.to_float t /. 1e9
let to_s t = Int64.to_float t /. 1e12
let add = Int64.add
let sub = Int64.sub
let mul t n = Int64.mul t (Int64.of_int n)
let div t n = Int64.div t (Int64.of_int n)

let scale t f =
  assert (f >= 0.0);
  of_float_ps (Int64.to_float t *. f)

let min = Int64.min
let max = Int64.max
let compare = Int64.compare
let equal = Int64.equal
let is_negative t = Stdlib.( < ) (compare t zero) 0

let pp ppf t =
  let abs = Int64.abs t in
  if Int64.compare abs 1_000L < 0 then Fmt.pf ppf "%Ldps" t
  else if Int64.compare abs 1_000_000L < 0 then Fmt.pf ppf "%.1fns" (to_ns t)
  else if Int64.compare abs 1_000_000_000L < 0 then Fmt.pf ppf "%.2fus" (to_us t)
  else if Int64.compare abs 1_000_000_000_000L < 0 then Fmt.pf ppf "%.2fms" (to_ms t)
  else Fmt.pf ppf "%.3fs" (to_s t)

let to_string t = Fmt.str "%a" pp t
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0
