module Power = struct
  type t = float

  let watts w = w
  let to_watts w = w
  let pp ppf w = Fmt.pf ppf "%.1fW" w
end

module Energy = struct
  type t = float

  let joules j = j
  let to_joules j = j
  let of_power_time p t = p *. Time.to_s t

  let duration_at e p =
    assert (p > 0.0);
    Time.s (e /. p)

  let pp ppf j = Fmt.pf ppf "%.2fJ" j
end

module Voltage = struct
  type t = float

  let volts v = v
  let to_volts v = v
  let pp ppf v = Fmt.pf ppf "%.2fV" v
end

module Capacitance = struct
  type t = float

  let farads f = f
  let to_farads f = f
  let stored_energy c v = 0.5 *. c *. v *. v

  let voltage_after_discharge c ~v0 ~drawn =
    let e0 = stored_energy c v0 in
    let e = e0 -. drawn in
    if e <= 0.0 then 0.0 else sqrt (2.0 *. e /. c)

  let pp ppf f = Fmt.pf ppf "%.2fF" f
end

module Size = struct
  type t = int

  let bytes n = n
  let kib n = n * 1024
  let mib n = n * 1024 * 1024
  let gib n = n * 1024 * 1024 * 1024
  let to_bytes n = n
  let to_mib n = float_of_int n /. (1024.0 *. 1024.0)
  let to_gib n = float_of_int n /. (1024.0 *. 1024.0 *. 1024.0)

  let pp ppf n =
    if n < 1024 then Fmt.pf ppf "%dB" n
    else if n < 1024 * 1024 then Fmt.pf ppf "%.1fKiB" (float_of_int n /. 1024.0)
    else if n < 1024 * 1024 * 1024 then Fmt.pf ppf "%.1fMiB" (to_mib n)
    else Fmt.pf ppf "%.2fGiB" (to_gib n)
end

module Bandwidth = struct
  type t = float

  let bytes_per_s b = b
  let mib_per_s m = m *. 1024.0 *. 1024.0
  let gib_per_s g = g *. 1024.0 *. 1024.0 *. 1024.0
  let to_bytes_per_s b = b

  let transfer_time bw size =
    assert (bw > 0.0);
    Time.s (float_of_int (Size.to_bytes size) /. bw)

  let pp ppf b = Fmt.pf ppf "%.1fMiB/s" (b /. (1024.0 *. 1024.0))
end
