type t = {
  name : string;
  mutable times : Time.t array;
  mutable values : float array;
  mutable size : int;
}

let create ~name = { name; times = [||]; values = [||]; size = 0 }
let name t = t.name

let record t at v =
  if t.size > 0 && Time.(at < t.times.(t.size - 1)) then
    invalid_arg "Trace.record: samples must be time-ordered";
  let capacity = Array.length t.times in
  if t.size = capacity then begin
    let cap' = Stdlib.max 64 (2 * capacity) in
    let times' = Array.make cap' Time.zero and values' = Array.make cap' 0.0 in
    Array.blit t.times 0 times' 0 t.size;
    Array.blit t.values 0 values' 0 t.size;
    t.times <- times';
    t.values <- values'
  end;
  t.times.(t.size) <- at;
  t.values.(t.size) <- v;
  t.size <- t.size + 1

let length t = t.size

let samples t =
  Array.init t.size (fun i -> (t.times.(i), t.values.(i)))

let value_at t at =
  (* Binary search for the last sample <= at. *)
  if t.size = 0 || Time.(t.times.(0) > at) then None
  else begin
    let lo = ref 0 and hi = ref (t.size - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if Time.(t.times.(mid) <= at) then lo := mid else hi := mid - 1
    done;
    Some t.values.(!lo)
  end

let first_crossing_below t ~threshold ~hold =
  let result = ref None in
  let candidate = ref None in
  (try
     for i = 0 to t.size - 1 do
       if t.values.(i) < threshold then begin
         (match !candidate with
         | None -> candidate := Some t.times.(i)
         | Some start ->
             if Time.(Time.sub t.times.(i) start >= hold) then begin
               result := Some start;
               raise Exit
             end)
       end
       else candidate := None
     done
   with Exit -> ());
  !result

let iter t f =
  for i = 0 to t.size - 1 do
    f t.times.(i) t.values.(i)
  done
