(** Figure 9 — device state save time via ACPI D3.

    Paper: putting all devices to sleep takes ≈5.2–5.3 s on the AMD
    testbed and ≈6.4–6.6 s on the Intel testbed — far beyond every
    residual energy window in Figure 7, which is why WSP must restart
    devices on the restore path instead. *)

open Wsp_sim

type row = {
  platform : Wsp_machine.Platform.t;
  busy : bool;
  duration : Time.t;
  paper : Time.t;
  breakdown : (string * Time.t) list;  (** Per-device contribution. *)
}

val data : unit -> row list
val run : full:bool -> unit
