open Wsp_sim
module Nvdimm = Wsp_nvdimm.Nvdimm
module Ultracap = Wsp_power.Ultracap

type result = {
  save_time : Time.t;
  supply_time : Time.t;
  margin : float;
  voltage : Trace.t;
  power : Trace.t;
}

let data ?(size = Units.Size.gib 1) () =
  let engine = Engine.create () in
  let nvdimm = Nvdimm.create ~engine ~size () in
  let save_time = Nvdimm.save_duration nvdimm in
  let supply_time =
    Ultracap.supply_duration (Nvdimm.ultracap nvdimm) ~band:Ultracap.Datasheet
      ~power:(Nvdimm.save_power nvdimm)
  in
  let voltage, power =
    Nvdimm.save_trace nvdimm ~sample_period:(Time.s 0.5) ~horizon:(Time.s 20.0)
  in
  {
    save_time;
    supply_time;
    margin = Time.to_s supply_time /. Time.to_s save_time;
    voltage;
    power;
  }

let run ~full:_ =
  Report.heading
    "Figure 2: Voltage and power draw on ultracapacitors during NVDIMM save (1 GB)";
  let r = data () in
  let rows =
    Array.to_list
      (Array.map
         (fun (at, v) ->
           let p =
             match Trace.value_at r.power at with Some p -> p | None -> 0.0
           in
           [
             Report.float_cell ~decimals:1 (Time.to_s at);
             Report.float_cell ~decimals:2 v;
             Report.float_cell ~decimals:2 p;
           ])
         (Trace.samples r.voltage))
  in
  Report.table ~header:[ "Time (s)"; "Voltage (V)"; "Power output (W)" ] rows;
  let plot trace =
    ( Trace.name trace,
      Array.to_list
        (Array.map (fun (at, v) -> (Time.to_s at, v)) (Trace.samples trace)) )
  in
  Report.chart ~height:12 ~xlabel:"seconds" ~ylabel:"V / W"
    [ plot r.voltage; plot r.power ];
  Report.note
    (Printf.sprintf "save completed at %.1f s (paper: <10 s); ultracap margin %.1fx (paper: >=2x)"
       (Time.to_s r.save_time) r.margin)
