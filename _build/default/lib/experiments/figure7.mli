(** Figure 7 — residual energy windows across PSU and load
    configurations.

    Paper (worst of 3 runs, ms): AMD with 400 W PSU — busy 346 / idle
    392; AMD with 525 W — 22 / 71; Intel with 750 W — 10 / 10; Intel
    with 1050 W — 33 / 33. *)

open Wsp_sim

type row = {
  psu : Wsp_power.Psu.spec;
  platform : Wsp_machine.Platform.t;
  busy : bool;
  window : Time.t;  (** Worst (lowest) of the measured runs. *)
  paper : Time.t;
}

val data : ?runs:int -> ?seed:int -> unit -> row list
val run : full:bool -> unit
