(** Figure 6 — the residual energy window on the Intel testbed.

    Paper: oscilloscope trace of PWR_OK and the 12/5/3.3 V rails around
    an input power failure with the 1050 W PSU under full stress load;
    the rails hold for 33 ms after PWR_OK drops. *)

open Wsp_sim

type result = {
  traces : Trace.t list;  (** PWR_OK and one trace per rail. *)
  measured_window : Time.t option;
      (** From the paper's 95 %-for-250 µs detection rule. *)
  nominal_window : Time.t;
}

val data : ?seed:int -> unit -> result
val run : full:bool -> unit
