(** Design-choice ablations for the WSP save/restore protocol.

    Two safeguards DESIGN.md calls out get switched off to show what
    they buy:

    - the {e valid-image marker} (§6 "NVRAM failures"): without it, a
      save interrupted mid-flush restores a torn image as if it were
      good — silent corruption instead of a detected failure;
    - the {e restore-path device strategy} (§4): handling devices on the
      save path (ACPI) pushes the save far beyond the residual window,
      while both restore-path strategies keep it in the
      low-milliseconds. *)

open Wsp_sim

type marker_row = {
  marker_enabled : bool;
  outcome : string;
  claimed_recovery : bool;
  data_correct : bool;  (** Application-level verification. *)
}

val marker_data : ?seed:int -> unit -> marker_row list
(** Runs a deliberately torn save (ACPI strawman under stress) with the
    marker check on and off. *)

type strategy_row = {
  strategy : Wsp_core.System.restart_strategy;
  save_path : Time.t option;  (** Host save latency; None = blew the window. *)
  resume : Time.t option;  (** None when recovery failed. *)
  survived : bool;
}

val strategy_data : ?seed:int -> unit -> strategy_row list

val run : full:bool -> unit
