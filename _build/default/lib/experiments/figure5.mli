(** Figure 5 — hash table microbenchmark: time per operation vs. update
    probability for the five persistence configurations.

    Paper: 100,000-entry table, 1,000,000 operations per point.
    FoC + STM is 6–13× slower than FoF; FoC + UL has a 60 % overhead on
    a read-only workload and is nearly 10× slower when write-intensive;
    the flush-on-fail variants sit close to FoF. *)

open Wsp_sim
open Wsp_nvheap

type series = { config : Config.t; points : (float * Time.t) list }

val data :
  ?entries:int -> ?ops:int -> ?points:int -> ?seed:int -> unit -> series list
(** Defaults (scaled down from the paper): 20,000 entries, 100,000 ops,
    6 update-probability points. *)

val slowdown_range : series list -> float * float
(** (min, max) of FoC+STM time over FoF time across the sweep — the
    paper's "6–13x". *)

val run : full:bool -> unit
