(** Figure 8 — context save and cache flush times vs. dirty bytes.

    Paper: on all four platforms the state save (contexts + wbinvd) is
    under 5 ms regardless of how many cache lines are dirty, and under
    3 ms on the two testbeds; wbinvd time depends only weakly on the
    dirty-byte count. *)

open Wsp_sim

type series = {
  platform : Wsp_machine.Platform.t;
  points : (int * Time.t) list;  (** (dirty bytes, state save time). *)
}

val data : ?points:int -> unit -> series list
(** Sweeps dirty bytes over powers of four from 128 B to 16 MiB (capped
    at each platform's cache capacity). *)

val mechanistic_check :
  Wsp_machine.Platform.t -> dirty_bytes:int -> Time.t
(** Drives a real aggregate cache hierarchy: dirties the requested
    amount with stores, then times {!Wsp_machine.Hierarchy.flush_all};
    used to cross-check the analytic model. *)

val run : full:bool -> unit
