open Wsp_sim
open Wsp_cluster

let run ~full:_ =
  Report.heading "Motivation (1-2): recovery storms, with and without WSP";
  let single = Recovery_storm.run Recovery_storm.single_server in
  Report.note
    (Printf.sprintf
       "single server, 256 GB at 0.5 GB/s: %.1f min from the back end (paper: >8 min); %.1f s with WSP"
       (Time.to_s single.Recovery_storm.full_recovery /. 60.0)
       (Time.to_s single.Recovery_storm.wsp_recovery));
  let storm = Recovery_storm.run Recovery_storm.default in
  let p = storm.Recovery_storm.params in
  Report.table
    ~header:[ "Scenario"; "Back-end recovery"; "WSP recovery"; "Speedup"; "Back-end reads" ]
    [
      [
        Printf.sprintf "%d servers x %s rack outage" p.Recovery_storm.servers
          (Fmt.str "%a" Units.Size.pp p.Recovery_storm.state_per_server);
        Printf.sprintf "%.1f min" (Time.to_s storm.Recovery_storm.full_recovery /. 60.0);
        Printf.sprintf "%.1f s" (Time.to_s storm.Recovery_storm.wsp_recovery);
        Printf.sprintf "%.0fx" storm.Recovery_storm.speedup;
        Printf.sprintf "%.0f GiB vs %.2f GiB"
          (storm.Recovery_storm.backend_bytes_full /. (1024.0 ** 3.0))
          (storm.Recovery_storm.backend_bytes_wsp /. (1024.0 ** 3.0));
      ];
    ];
  Report.table
    ~header:[ "Fleet fraction online"; "Back end"; "WSP" ]
    (List.map
       (fun fraction ->
         [
           Printf.sprintf "%.0f%%" (100.0 *. fraction);
           Printf.sprintf "%.1f min"
             (Time.to_s (Recovery_storm.recovery_timeline p ~fraction `Full) /. 60.0);
           Printf.sprintf "%.1f s"
             (Time.to_s (Recovery_storm.recovery_timeline p ~fraction `Wsp));
         ])
       [ 0.25; 0.5; 0.9; 1.0 ]);
  Report.heading "Discussion (6): delaying replica re-instantiation";
  let params = Replication.default in
  Report.table
    ~header:[ "Delay"; "E[back-end bytes]"; "E[exposure]"; "P[rebuild]" ]
    (List.map
       (fun seconds ->
         let a = Replication.assess params ~delay:(Time.s seconds) in
         [
           Printf.sprintf "%.0f s" seconds;
           Printf.sprintf "%.1f GiB"
             (a.Replication.expected_backend_bytes /. (1024.0 ** 3.0));
           Printf.sprintf "%.0f s" (Time.to_s a.Replication.expected_exposure);
           Printf.sprintf "%.2f" a.Replication.rebuild_probability;
         ])
       [ 0.0; 30.0; 60.0; 120.0; 300.0 ]);
  let delay, _cost =
    Replication.optimal_delay params ~exposure_cost_per_s:0.3
      ~byte_cost:1e-9
  in
  Report.note
    (Printf.sprintf
       "NVRAM shifts the optimum: waiting %.0f s for the machine to return minimises cost"
       (Time.to_s delay))
