open Wsp_sim
open Wsp_machine

type row = {
  label : string;
  gap_interval : int option;
  wear_ratio : float;
  lifetime_fraction : float;
  write_overhead : float;
}

let data ?(lines = 1024) ?(writes = 8_000_000) ?(theta = 0.99) ?(seed = 71) () =
  let run label gap_interval =
    let wl =
      match gap_interval with
      | Some psi -> Wear_level.create ~gap_interval:psi ~lines ()
      | None ->
          (* "No leveling": a gap that effectively never moves. *)
          Wear_level.create ~gap_interval:max_int ~lines ()
    in
    let rng = Rng.create ~seed in
    let zipf = Rng.Zipf.create ~theta ~n:lines () in
    for _ = 1 to writes do
      Wear_level.record_write wl (Rng.Zipf.draw zipf rng)
    done;
    {
      label;
      gap_interval;
      wear_ratio = Wear_level.wear_ratio wl;
      lifetime_fraction = Wear_level.lifetime_fraction wl;
      write_overhead =
        float_of_int (Wear_level.gap_moves wl) /. float_of_int writes;
    }
  in
  [
    run "no leveling" None;
    run "start-gap (psi=1000)" (Some 1000);
    run "start-gap (psi=100)" (Some 100);
    run "start-gap (psi=10)" (Some 10);
  ]

let run ~full =
  Report.heading "Wear leveling (2): PCM under a Zipfian write stream";
  let rows = if full then data ~writes:40_000_000 () else data () in
  Report.table
    ~header:[ "Scheme"; "Max/mean wear"; "Lifetime achieved"; "Write overhead" ]
    (List.map
       (fun r ->
         [
           r.label;
           Printf.sprintf "%.1fx" r.wear_ratio;
           Printf.sprintf "%.0f%%" (100.0 *. r.lifetime_fraction);
           Printf.sprintf "%.1f%%" (100.0 *. r.write_overhead);
         ])
       rows);
  Report.note
    "without leveling the hottest PCM line absorbs the skew and dies early; faster gap rotation (smaller psi) approaches the ideal lifetime at the cost of extra copy writes, and levelling improves with horizon as rotations accumulate (pass --full)"
