(** Key-popularity skew and the flush-on-fail advantage.

    Real key-value traffic is Zipfian, not uniform (the motivating
    caches of §1–2 are exactly such systems). Skew concentrates the
    working set, so cache hit rates rise and WSP's in-memory operations
    get {e faster} — while flush-on-commit stays pinned to memory by its
    synchronous log writes and flushes. The FoC/FoF gap therefore widens
    on realistic traffic. *)

open Wsp_sim

type row = {
  label : string;
  distribution : [ `Uniform | `Zipfian of float ];
  foc_stm : Time.t;
  fof : Time.t;
  slowdown : float;
}

val data : ?entries:int -> ?ops:int -> ?seed:int -> unit -> row list
val run : full:bool -> unit
