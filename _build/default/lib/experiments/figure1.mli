(** Figure 1 — effect of charge/discharge cycles on ultracapacitors.

    Paper (AgigA Tech data): over 100,000 cycles at elevated temperature
    and voltage, ultracapacitors keep ≥90 % of their capacitance even in
    the worst case, while rechargeable batteries collapse within a few
    hundred cycles. *)

type point = {
  cycles : int;
  best : float;  (** Fraction of nominal capacitance remaining. *)
  datasheet : float;
  worst : float;
  battery : float;
}

val data : ?points:int -> ?max_cycles:int -> unit -> point list
val run : full:bool -> unit
