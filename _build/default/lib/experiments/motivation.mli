(** The §1–2 motivation numbers: recovery storms and back-end load.

    Reproduces the arithmetic that motivates WSP — reading 256 GB at
    0.5 GB/s takes over 8 minutes even for one server, and a correlated
    outage multiplies it by the fleet — and the §6 replication-delay
    tradeoff. *)

val run : full:bool -> unit
