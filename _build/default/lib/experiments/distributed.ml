open Wsp_sim
open Wsp_cluster

type row = {
  missed_updates : int;
  recovery : Replicated_kv.recovery;
  full_transfer_bytes : int;
  savings : float;
}

let data ?(keys = 200_000) ?(log_retention = 100_000) ?(seed = 61) () =
  List.map
    (fun missed ->
      let cluster =
        Replicated_kv.create ~replicas:3 ~log_retention ~value_bytes:256 ()
      in
      let rng = Rng.create ~seed in
      for i = 1 to keys do
        Replicated_kv.put cluster ~key:(Int64.of_int i) ~value:(Rng.bits64 rng)
      done;
      Replicated_kv.fail_node cluster 2;
      for _ = 1 to missed do
        let key = Int64.of_int (1 + Rng.int rng keys) in
        Replicated_kv.put cluster ~key ~value:(Rng.bits64 rng)
      done;
      let live = List.hd (Replicated_kv.live_nodes cluster) in
      let full_transfer_bytes = Replicated_kv.Node.state_bytes live in
      let recovery = Replicated_kv.recover_node cluster 2 in
      assert (Replicated_kv.consistent cluster);
      {
        missed_updates = missed;
        recovery;
        full_transfer_bytes;
        savings =
          float_of_int full_transfer_bytes
          /. float_of_int (max 1 recovery.Replicated_kv.transferred_bytes);
      })
    [ 1_000; 5_000; 20_000; 150_000 ]

let run ~full:_ =
  Report.heading "Distributed recovery (6): log catch-up vs re-replication";
  Report.table
    ~header:
      [ "Missed updates"; "Mode"; "Transferred"; "Duration"; "vs full transfer" ]
    (List.map
       (fun r ->
         [
           string_of_int r.missed_updates;
           (match r.recovery.Replicated_kv.mode with
           | `Log_catch_up -> "log catch-up"
           | `Full_transfer -> "FULL TRANSFER");
           Printf.sprintf "%.1f MiB"
             (float_of_int r.recovery.Replicated_kv.transferred_bytes
             /. (1024.0 *. 1024.0));
           Time.to_string r.recovery.Replicated_kv.duration;
           Printf.sprintf "%.0fx less" r.savings;
         ])
       (data ()));
  Report.note
    "an NVRAM-intact node ships only missed updates until the outage outlives the peers' log retention (100k updates here)"
