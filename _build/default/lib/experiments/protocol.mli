(** End-to-end WSP protocol runs (Figure 4 in action).

    Not a paper table, but the system the tables argue for: on each
    platform/PSU pair, populate a persistent heap, cut input power,
    race the save routine against the residual window, power back on and
    restore — verifying that the application state survived bit-for-bit.
    Includes the ACPI strawman, which blows the window and is caught by
    the valid-image marker. *)

open Wsp_sim

type row = {
  label : string;
  window : Time.t;
  host_save : Time.t option;  (** Interrupt to NVDIMM-save initiation. *)
  outcome : Wsp_core.System.outcome;
  data_intact : bool;
}

val data : ?seed:int -> unit -> row list
val run : full:bool -> unit
