open Wsp_sim
open Wsp_machine

type row = {
  platform : Platform.t;
  wbinvd : Time.t;
  clflush : Time.t;
  theoretical_best : Time.t;
  paper : Time.t * Time.t * Time.t;
}

let cases =
  [
    (Platform.intel_c5528, (Time.ms 2.8, Time.ms 2.3, Time.ms 0.79));
    (Platform.amd_4180, (Time.ms 1.3, Time.ms 1.6, Time.ms 0.65));
  ]

let data () =
  List.map
    (fun (platform, paper) ->
      (* Worst case: every line of the LLC dirty; clflush must walk the
         whole cached region by address. *)
      let dirty = Flush.max_dirty_bytes platform in
      {
        platform;
        wbinvd = Flush.wbinvd_time platform ~dirty_bytes:dirty;
        clflush = Flush.clflush_time platform ~region_bytes:dirty ~dirty_bytes:dirty;
        theoretical_best = Flush.theoretical_best platform ~dirty_bytes:dirty;
        paper;
      })
    cases

let run ~full:_ =
  Report.heading "Table 2: Cache flush times using different instructions (ms)";
  Report.table
    ~header:
      [ "Platform"; "wbinvd"; "clflush"; "best"; "paper wbinvd"; "paper clflush"; "paper best" ]
    (List.map
       (fun r ->
         let pw, pc, pb = r.paper in
         [
           r.platform.Platform.name;
           Report.time_ms_cell r.wbinvd;
           Report.time_ms_cell r.clflush;
           Report.time_ms_cell r.theoretical_best;
           Report.time_ms_cell pw;
           Report.time_ms_cell pc;
           Report.time_ms_cell pb;
         ])
       (data ()));
  Report.note "worst case: all cache lines dirty"
