(** Figure 2 — ultracapacitor voltage and power draw during an NVDIMM
    save.

    Paper: for a 1 GB NVDIMM the save completes in under 10 s and the
    ultracapacitors can power the module for at least twice that long
    (usable down to a 6 V input). *)

open Wsp_sim

type result = {
  save_time : Time.t;
  supply_time : Time.t;  (** How long the bank could sustain save power. *)
  margin : float;  (** [supply_time / save_time]; the paper needs >= 2. *)
  voltage : Trace.t;
  power : Trace.t;
}

val data : ?size:Units.Size.t -> unit -> result
(** Defaults to the paper's 1 GB module. *)

val run : full:bool -> unit
