open Wsp_sim
open Wsp_nvheap
open Wsp_store

type row = {
  label : string;
  distribution : [ `Uniform | `Zipfian of float ];
  foc_stm : Time.t;
  fof : Time.t;
  slowdown : float;
}

let cases =
  [
    ("uniform", `Uniform);
    ("zipfian (theta=0.9)", `Zipfian 0.9);
    ("zipfian (theta=0.99)", `Zipfian 0.99);
  ]

let data ?(entries = 50_000) ?(ops = 50_000) ?(seed = 81) () =
  List.map
    (fun (label, distribution) ->
      let per_op config =
        (Workload.run_hash_benchmark ~entries ~ops
           ~heap_size:(Units.Size.mib 64) ~distribution ~config
           ~update_prob:0.2 ~seed ())
          .Workload.per_op
      in
      let foc_stm = per_op Config.foc_stm in
      let fof = per_op Config.fof in
      {
        label;
        distribution;
        foc_stm;
        fof;
        slowdown = Time.to_ns foc_stm /. Time.to_ns fof;
      })
    cases

let run ~full =
  Report.heading "Skewed traffic: the FoC/FoF gap on realistic key popularity";
  let rows =
    if full then data ~entries:100_000 ~ops:200_000 () else data ()
  in
  Report.table
    ~header:[ "Distribution"; "FoC+STM us/op"; "WSP us/op"; "FoC/WSP" ]
    (List.map
       (fun r ->
         [
           r.label;
           Report.time_us_cell r.foc_stm;
           Report.time_us_cell r.fof;
           Printf.sprintf "%.1fx" r.slowdown;
         ])
       rows);
  Report.note
    "skew shrinks the working set, so WSP rides the cache while flush-on-commit stays pinned to memory"
