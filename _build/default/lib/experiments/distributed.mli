(** §6 "Distributed applications" — catch-up vs. re-replication.

    A replicated KV service loses one node for a while; when it returns
    with NVRAM-intact (stale) state, recovery ships only the missed
    updates from a peer's retained log — until the outage outlives the
    log retention, where it degrades to the pre-WSP behaviour: a full
    state transfer. *)

open Wsp_cluster

type row = {
  missed_updates : int;
  recovery : Replicated_kv.recovery;
  full_transfer_bytes : int;  (** What re-replication would have moved. *)
  savings : float;  (** full / actual transferred bytes. *)
}

val data : ?keys:int -> ?log_retention:int -> ?seed:int -> unit -> row list
val run : full:bool -> unit
