(** Table 1 — OpenLDAP update throughput: Mnemosyne vs. WSP.

    Paper: 100,000 inserts into an empty directory; Mnemosyne (redo-log
    STM, flush-on-commit) 2160 ± 77 updates/s, WSP (plain in-memory
    tree) 5274 ± 139 updates/s — WSP 2.4× faster. *)

type row = {
  label : string;
  config : Wsp_nvheap.Config.t;
  updates_per_s : float;
  paper_updates_per_s : float;
}

val data : ?entries:int -> ?seed:int -> unit -> row list
(** Runs both configurations; [entries] defaults to 20,000 (a documented
    scale-down of the paper's 100,000 — pass it explicitly for the full
    run). *)

val speedup : row list -> float
(** WSP throughput over Mnemosyne throughput. *)

val run : full:bool -> unit
(** Prints the table ([full] uses the paper's 100,000 entries). *)
