(** §7 transparency — the flush-on-fail advantage is structure-agnostic.

    NV-heaps support a fixed repertoire of persistent data structures;
    "WSP is transparent to applications and any in-memory data
    structures can be used". This ablation runs the same mixed workload
    over four structures (hash table, AVL tree, skip list, B-tree) under
    Mnemosyne-style flush-on-commit and under WSP, showing the FoC/FoF
    gap holds for every one of them. *)

open Wsp_sim
open Wsp_store

type row = {
  structure : Workload.structure;
  foc_stm : Time.t;  (** per-op under flush-on-commit STM. *)
  fof : Time.t;  (** per-op under WSP. *)
  slowdown : float;
}

val data : ?entries:int -> ?ops:int -> ?seed:int -> unit -> row list
val run : full:bool -> unit
