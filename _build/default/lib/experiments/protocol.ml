open Wsp_sim
open Wsp_machine
open Wsp_nvheap
open Wsp_core
module Psu = Wsp_power.Psu

type row = {
  label : string;
  window : Time.t;
  host_save : Time.t option;
  outcome : System.outcome;
  data_intact : bool;
}

let cases =
  [
    ("Intel C5528 / 1050W / busy", Platform.intel_c5528, Psu.atx_1050, true,
     System.Restore_reinit);
    ("Intel C5528 / 750W / busy", Platform.intel_c5528, Psu.atx_750, true,
     System.Restore_reinit);
    ("AMD 4180 / 525W / busy", Platform.amd_4180, Psu.atx_525, true,
     System.Virtualized_replay);
    ("AMD 4180 / 400W / idle", Platform.amd_4180, Psu.atx_400, false,
     System.Restore_reinit);
    ("Intel C5528 / 1050W / busy, ACPI strawman", Platform.intel_c5528,
     Psu.atx_1050, true, System.Acpi_save);
  ]

let words = 512

let run_case ~seed (label, platform, psu, busy, strategy) =
  let sys = System.create ~platform ~psu ~busy ~strategy ~seed () in
  let heap = System.heap sys in
  let addr = Pheap.alloc heap (8 * words) in
  let rng = Rng.create ~seed in
  let expected = Array.init words (fun _ -> Rng.bits64 rng) in
  Array.iteri
    (fun i v -> Pheap.write_u64 heap ~addr:(addr + (8 * i)) v)
    expected;
  Pheap.set_root heap addr;
  System.inject_power_failure sys;
  let report = System.report sys in
  let outcome = System.power_on_and_restore sys in
  let data_intact =
    match outcome with
    | System.Recovered _ ->
        let heap' = System.attach_heap sys in
        let root = Pheap.root heap' in
        root = addr
        && Array.for_all
             (fun i ->
               Int64.equal
                 (Pheap.read_u64 heap' ~addr:(root + (8 * i)))
                 expected.(i))
             (Array.init words (fun i -> i))
    | System.Invalid_marker | System.No_image -> false
  in
  {
    label;
    window = report.System.window;
    host_save = System.host_save_latency report;
    outcome;
    data_intact;
  }

let data ?(seed = 99) () = List.map (run_case ~seed) cases

let run ~full:_ =
  Report.heading "WSP protocol: end-to-end power-failure cycles";
  Report.table
    ~header:[ "Scenario"; "Window (ms)"; "Host save (ms)"; "Outcome"; "Data intact" ]
    (List.map
       (fun r ->
         [
           r.label;
           Report.time_ms_cell r.window;
           (match r.host_save with
           | Some t -> Report.time_ms_cell t
           | None -> "did not finish");
           System.outcome_name r.outcome;
           string_of_bool r.data_intact;
         ])
       (data ()));
  Report.note
    "a failure becomes suspend/resume when the save fits the window; the ACPI strawman is caught by the valid marker"
