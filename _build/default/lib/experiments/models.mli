(** §3.2 — the three persistence models, measured.

    The paper's taxonomy: (1) block-based (persistent buffer cache /
    RAMdisk), (2) persistent heaps (flush-on-commit), (3) whole-system
    persistence. Models 2 and 3 are Figure 5's subject; this experiment
    adds model 1 and measures the two §3.2 claims against it: block
    persistence roughly doubles the memory footprint and pays system-call
    plus block-transfer costs on every update. *)

open Wsp_sim

type row = {
  label : string;
  per_op_read : Time.t;  (** update probability 0. *)
  per_op_mixed : Time.t;  (** update probability 0.5. *)
  per_op_update : Time.t;  (** update probability 1. *)
  footprint_factor : float;
      (** Bytes of state kept per byte of live data (1.0 = no
          duplication). *)
}

val data : ?entries:int -> ?ops:int -> ?seed:int -> unit -> row list
val run : full:bool -> unit
