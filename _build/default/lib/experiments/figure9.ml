open Wsp_sim
open Wsp_machine
open Wsp_core

type row = {
  platform : Platform.t;
  busy : bool;
  duration : Time.t;
  paper : Time.t;
  breakdown : (string * Time.t) list;
}

let cases =
  [
    (Platform.amd_4180, true, Time.ms 5310.0);
    (Platform.amd_4180, false, Time.ms 5210.0);
    (Platform.intel_c5528, true, Time.ms 6600.0);
    (Platform.intel_c5528, false, Time.ms 6400.0);
  ]

let data () =
  List.map
    (fun (platform, busy, paper) ->
      let devices = Device.suite_for platform in
      List.iter (fun d -> Device.set_busy d busy) devices;
      let breakdown =
        List.map
          (fun d -> ((Device.spec d).Device.name, Device.suspend_duration d))
          devices
      in
      { platform; busy; duration = Acpi.suspend_duration devices; paper; breakdown })
    cases

let run ~full:_ =
  Report.heading "Figure 9: Device state save time (ms)";
  Report.table
    ~header:[ "System"; "Load"; "Save time"; "Paper"; "Dominated by" ]
    (List.map
       (fun r ->
         let top3 =
           List.sort (fun (_, a) (_, b) -> Time.compare b a) r.breakdown
           |> List.filteri (fun i _ -> i < 3)
           |> List.map fst |> String.concat ", "
         in
         [
           r.platform.Platform.name;
           (if r.busy then "Busy" else "Idle");
           Report.time_ms_cell r.duration;
           Report.time_ms_cell r.paper;
           top3;
         ])
       (data ()));
  Report.note
    "device save exceeds every Figure 7 window by orders of magnitude: restart devices on restore instead"
