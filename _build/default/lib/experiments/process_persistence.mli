(** §6 — whole-system vs process persistence.

    Compares three recovery models after the same power failure: WSP
    restoring everything; a Drawbridge-style process (library OS inside
    the image) revived on a fresh kernel with its system calls aborted
    and retried; and an ordinary process with direct kernel dependencies,
    which cannot be safely revived and falls back to the storage back
    end. *)

open Wsp_sim

type row = {
  label : string;
  outcome : string;
  restart_latency : Time.t;
  state_preserved : string;
  device_story : string;
}

val data : ?seed:int -> unit -> row list
val run : full:bool -> unit
