open Wsp_sim
open Wsp_machine

type series = { platform : Platform.t; points : (int * Time.t) list }

let sweep ?(points = 10) () =
  (* 128 B, 512 B, 2 KiB, ... up to 16 MiB: powers of four as in the
     paper's x axis. *)
  List.init points (fun i -> 128 * (1 lsl (2 * i)))

let data ?points () =
  List.map
    (fun platform ->
      let points =
        List.map
          (fun dirty ->
            (* The x value stays the requested sweep point; platforms
               with smaller caches simply saturate (Flush caps the dirty
               bytes at the cache capacity). *)
            (dirty, Flush.state_save_time platform ~dirty_bytes:dirty))
          (sweep ?points ())
      in
      { platform; points })
    Platform.all

let mechanistic_check platform ~dirty_bytes =
  let h = Hierarchy.create (Platform.aggregate_hierarchy platform) in
  let line = Hierarchy.line_size h in
  let lines = dirty_bytes / line in
  for i = 0 to lines - 1 do
    ignore (Hierarchy.store h ~addr:(i * line))
  done;
  Time.add (Flush.context_save_time platform) (Hierarchy.flush_all h)

let run ~full:_ =
  Report.heading "Figure 8: Context save and cache flush times (ms)";
  let series = data () in
  let label p =
    Printf.sprintf "%s (%s)" p.Platform.short_name
      (Fmt.str "%a" Wsp_sim.Units.Size.pp (Platform.llc_total p))
  in
  let named =
    List.map
      (fun s ->
        ( label s.platform,
          List.map
            (fun (dirty, t) -> (float_of_int dirty /. 1024.0, Time.to_ms t))
            s.points ))
      series
  in
  Report.series ~xlabel:"dirty KiB" ~ylabel:"state save time, ms" named;
  Report.chart ~logx:true ~xlabel:"cache dirty KiB" ~ylabel:"save ms" named;
  let worst =
    List.fold_left
      (fun acc s ->
        List.fold_left (fun acc (_, t) -> Time.max acc t) acc s.points)
      Time.zero series
  in
  Report.note
    (Printf.sprintf
       "worst save time %.2f ms (paper: <5 ms everywhere, <3 ms on the testbeds)"
       (Time.to_ms worst))
