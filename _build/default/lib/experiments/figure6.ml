open Wsp_sim
open Wsp_machine
open Wsp_power

type result = {
  traces : Trace.t list;
  measured_window : Time.t option;
  nominal_window : Time.t;
}

let data ?(seed = 17) () =
  let engine = Engine.create () in
  let platform = Platform.intel_c5528 in
  let psu =
    Psu.create ~engine ~spec:Psu.atx_1050 ~load:platform.Platform.power_busy
  in
  let rng = Rng.create ~seed in
  let scope = Oscilloscope.create ~rng psu in
  (* Fail input power at t = 20 ms and observe [-20 ms, +100 ms] around
     the failure, as the published trace does. *)
  Engine.run_until engine (Time.ms 20.0);
  let fail_at = Engine.now engine in
  Psu.fail_input psu ();
  let until = Time.add fail_at (Time.ms 100.0) in
  Engine.run_until engine until;
  let traces = Oscilloscope.capture scope ~from:Time.zero ~until ~rails:Psu.all_rails in
  let measured_window = Oscilloscope.measure_window scope ~fail_at ~until in
  { traces; measured_window; nominal_window = Psu.nominal_window psu }

let run ~full:_ =
  Report.heading "Figure 6: Residual energy window (Intel testbed, 1050W PSU, busy)";
  let r = data () in
  (* Downsample the 100 kHz capture for printing: every 4 ms. *)
  let step = Time.ms 4.0 in
  let upto = Time.ms 120.0 in
  let rows = ref [] in
  let at = ref Time.zero in
  while Time.(!at <= upto) do
    let row =
      Report.float_cell ~decimals:1 (Time.to_ms !at -. 20.0)
      :: List.map
           (fun trace ->
             match Trace.value_at trace !at with
             | Some v -> Report.float_cell v
             | None -> "-")
           r.traces
    in
    rows := row :: !rows;
    at := Time.add !at step
  done;
  Report.table
    ~header:("Time (ms)" :: List.map Trace.name r.traces)
    (List.rev !rows);
  (* The published figure: sampled rail voltages around the failure. *)
  let plot trace =
    ( Trace.name trace,
      Array.to_list
        (Array.map
           (fun (at, v) -> (Time.to_ms at -. 20.0, v))
           (Trace.samples trace))
      |> List.filteri (fun i _ -> i mod 40 = 0) )
  in
  Report.chart ~height:14 ~xlabel:"ms after PWR_OK drop" ~ylabel:"volts"
    (List.map plot r.traces);
  (match r.measured_window with
  | Some w ->
      Report.note
        (Printf.sprintf "measured window: %.1f ms (paper: 33 ms); nominal %.1f ms"
           (Time.to_ms w) (Time.to_ms r.nominal_window))
  | None -> Report.note "no voltage drop detected in the capture window")
