(** Table 2 — worst-case cache flush times per instruction.

    Paper (all cache lines dirty): 2× Intel C5528 — wbinvd 2.8 ms,
    clflush 2.3 ms, theoretical best 0.79 ms; AMD 4180 — 1.3 / 1.6 /
    0.65 ms. *)

open Wsp_sim

type row = {
  platform : Wsp_machine.Platform.t;
  wbinvd : Time.t;
  clflush : Time.t;
  theoretical_best : Time.t;
  paper : Time.t * Time.t * Time.t;
}

val data : unit -> row list
val run : full:bool -> unit
