lib/experiments/figure8.ml: Flush Fmt Hierarchy List Platform Printf Report Time Wsp_machine Wsp_sim
