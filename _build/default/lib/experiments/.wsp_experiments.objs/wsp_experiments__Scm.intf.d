lib/experiments/scm.mli: Time Units Wsp_machine Wsp_sim
