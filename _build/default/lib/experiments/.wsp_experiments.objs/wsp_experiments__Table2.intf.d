lib/experiments/table2.mli: Time Wsp_machine Wsp_sim
