lib/experiments/wear.mli:
