lib/experiments/figure2.mli: Time Trace Units Wsp_sim
