lib/experiments/figure9.ml: Acpi Device List Platform Report String Time Wsp_core Wsp_machine Wsp_sim
