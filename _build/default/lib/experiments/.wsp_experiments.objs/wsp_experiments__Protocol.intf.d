lib/experiments/protocol.mli: Time Wsp_core Wsp_sim
