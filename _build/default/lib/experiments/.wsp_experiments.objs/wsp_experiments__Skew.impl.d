lib/experiments/skew.ml: Config List Printf Report Time Units Workload Wsp_nvheap Wsp_sim Wsp_store
