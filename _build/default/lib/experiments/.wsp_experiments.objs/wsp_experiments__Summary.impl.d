lib/experiments/summary.ml: Engine Float Flush List Platform Printf Psu Report Time Units Wsp_machine Wsp_power Wsp_sim
