lib/experiments/figure5.mli: Config Time Wsp_nvheap Wsp_sim
