lib/experiments/figure2.ml: Array Engine Printf Report Time Trace Units Wsp_nvdimm Wsp_power Wsp_sim
