lib/experiments/models.ml: Config List Report Time Units Workload Wsp_nvheap Wsp_sim Wsp_store
