lib/experiments/models.mli: Time Wsp_sim
