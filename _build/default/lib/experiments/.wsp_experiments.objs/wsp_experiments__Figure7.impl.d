lib/experiments/figure7.ml: Engine List Oscilloscope Platform Psu Report Rng Time Wsp_machine Wsp_power Wsp_sim
