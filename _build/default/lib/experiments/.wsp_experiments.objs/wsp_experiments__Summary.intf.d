lib/experiments/summary.mli: Time Wsp_machine Wsp_power Wsp_sim
