lib/experiments/table2.ml: Flush List Platform Report Time Wsp_machine Wsp_sim
