lib/experiments/figure8.mli: Time Wsp_machine Wsp_sim
