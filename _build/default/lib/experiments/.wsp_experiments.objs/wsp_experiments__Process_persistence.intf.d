lib/experiments/process_persistence.mli: Time Wsp_sim
