lib/experiments/scm.ml: Config Flush List Platform Printf Report Scm Time Units Workload Wsp_machine Wsp_nvheap Wsp_sim Wsp_store
