lib/experiments/table1.mli: Wsp_nvheap
