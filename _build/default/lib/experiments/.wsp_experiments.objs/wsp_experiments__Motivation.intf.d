lib/experiments/motivation.mli:
