lib/experiments/registry.mli:
