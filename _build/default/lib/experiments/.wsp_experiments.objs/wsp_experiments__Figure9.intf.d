lib/experiments/figure9.mli: Time Wsp_machine Wsp_sim
