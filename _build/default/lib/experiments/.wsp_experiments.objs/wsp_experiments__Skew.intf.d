lib/experiments/skew.mli: Time Wsp_sim
