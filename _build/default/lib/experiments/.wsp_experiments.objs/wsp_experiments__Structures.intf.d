lib/experiments/structures.mli: Time Workload Wsp_sim Wsp_store
