lib/experiments/figure6.ml: Array Engine List Oscilloscope Platform Printf Psu Report Rng Time Trace Wsp_machine Wsp_power Wsp_sim
