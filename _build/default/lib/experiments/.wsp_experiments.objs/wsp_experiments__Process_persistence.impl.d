lib/experiments/process_persistence.ml: List Printf Process Report Rng System Time Wsp_cluster Wsp_core Wsp_sim
