lib/experiments/motivation.ml: Fmt List Printf Recovery_storm Replication Report Time Units Wsp_cluster Wsp_sim
