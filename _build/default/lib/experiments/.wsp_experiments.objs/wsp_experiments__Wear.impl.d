lib/experiments/wear.ml: List Printf Report Rng Wear_level Wsp_machine Wsp_sim
