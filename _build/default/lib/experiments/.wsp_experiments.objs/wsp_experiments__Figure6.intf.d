lib/experiments/figure6.mli: Time Trace Wsp_sim
