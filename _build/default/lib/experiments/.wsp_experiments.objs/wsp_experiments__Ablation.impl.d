lib/experiments/ablation.ml: Array Int64 List Pheap Report Rng System Time Wsp_core Wsp_nvheap Wsp_sim
