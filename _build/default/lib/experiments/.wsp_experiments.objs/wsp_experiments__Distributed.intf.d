lib/experiments/distributed.mli: Replicated_kv Wsp_cluster
