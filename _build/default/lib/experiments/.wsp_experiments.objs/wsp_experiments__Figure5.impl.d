lib/experiments/figure5.ml: Config Float List Printf Report Time Workload Wsp_nvheap Wsp_sim Wsp_store
