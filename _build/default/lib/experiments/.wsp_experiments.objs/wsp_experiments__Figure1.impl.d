lib/experiments/figure1.ml: List Report Ultracap Wsp_power
