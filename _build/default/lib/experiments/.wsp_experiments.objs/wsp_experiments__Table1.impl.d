lib/experiments/table1.ml: Config Directory List Printf Report Wsp_nvheap Wsp_store
