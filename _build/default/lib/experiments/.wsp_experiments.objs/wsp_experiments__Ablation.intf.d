lib/experiments/ablation.mli: Time Wsp_core Wsp_sim
