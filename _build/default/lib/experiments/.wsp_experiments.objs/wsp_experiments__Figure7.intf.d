lib/experiments/figure7.mli: Time Wsp_machine Wsp_power Wsp_sim
