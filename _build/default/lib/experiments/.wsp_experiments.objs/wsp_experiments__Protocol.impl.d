lib/experiments/protocol.ml: Array Int64 List Pheap Platform Report Rng System Time Wsp_core Wsp_machine Wsp_nvheap Wsp_power Wsp_sim
