lib/experiments/report.mli: Wsp_sim
