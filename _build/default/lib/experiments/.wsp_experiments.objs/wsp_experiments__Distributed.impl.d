lib/experiments/distributed.ml: Int64 List Printf Replicated_kv Report Rng Time Wsp_cluster Wsp_sim
