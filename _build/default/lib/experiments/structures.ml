open Wsp_sim
open Wsp_nvheap
open Wsp_store

type row = {
  structure : Workload.structure;
  foc_stm : Time.t;
  fof : Time.t;
  slowdown : float;
}

let data ?(entries = 5000) ?(ops = 20_000) ?(seed = 41) () =
  List.map
    (fun structure ->
      let per_op config =
        (Workload.run_structure_benchmark ~entries ~ops
           ~heap_size:(Units.Size.mib 32) ~structure ~config ~update_prob:0.5
           ~seed ())
          .Workload.per_op
      in
      let foc_stm = per_op Config.foc_stm in
      let fof = per_op Config.fof in
      { structure; foc_stm; fof; slowdown = Time.to_ns foc_stm /. Time.to_ns fof })
    Workload.structures

let run ~full =
  Report.heading
    "Structures (7): the flush-on-fail advantage across data structures";
  let rows =
    if full then data ~entries:20_000 ~ops:100_000 () else data ()
  in
  Report.table
    ~header:[ "Structure"; "FoC+STM us/op"; "WSP us/op"; "FoC/WSP" ]
    (List.map
       (fun r ->
         [
           Workload.structure_name r.structure;
           Report.time_us_cell r.foc_stm;
           Report.time_us_cell r.fof;
           Printf.sprintf "%.1fx" r.slowdown;
         ])
       rows);
  Report.note
    "50% update workload; WSP persists every structure unmodified, so the gap is universal"
