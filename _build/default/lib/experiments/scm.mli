(** §6 — SCM-based NVRAMs: does flush-on-fail's advantage grow on slower
    memory?

    The paper predicts it does: flush-on-commit's synchronous log writes
    and flushes hit the slow SCM write path on every transaction, while
    flush-on-fail touches memory only through ordinary cached stores
    (write-backs are asynchronous) and pays the slow writes once, at
    failure time — where the energy budget scales with cache size, not
    memory size. *)

open Wsp_sim

type row = {
  profile : Wsp_machine.Scm.profile;
  foc_stm : Time.t;  (** per-op, update-heavy workload. *)
  fof : Time.t;
  slowdown : float;  (** FoC+STM over FoF. *)
  flush_energy : Units.Energy.t;
      (** Worst-case failure-time flush energy on this memory. *)
}

val data : ?entries:int -> ?ops:int -> ?seed:int -> unit -> row list

val run : full:bool -> unit
