open Wsp_power

type point = {
  cycles : int;
  best : float;
  datasheet : float;
  worst : float;
  battery : float;
}

let data ?(points = 11) ?(max_cycles = 100_000) () =
  List.init points (fun i ->
      let cycles = max_cycles * i / (points - 1) in
      {
        cycles;
        best = Ultracap.capacitance_fraction ~cycles ~band:Ultracap.Best;
        datasheet = Ultracap.capacitance_fraction ~cycles ~band:Ultracap.Datasheet;
        worst = Ultracap.capacitance_fraction ~cycles ~band:Ultracap.Worst;
        battery = Ultracap.battery_capacity_fraction ~cycles;
      })

let run ~full:_ =
  Report.heading
    "Figure 1: Effect of charge-discharge cycles on ultracapacitors (% capacitance)";
  Report.table
    ~header:[ "Cycles"; "Best case"; "Datasheet"; "Worst case"; "Battery" ]
    (List.map
       (fun p ->
         [
           string_of_int p.cycles;
           Report.float_cell (100.0 *. p.best);
           Report.float_cell (100.0 *. p.datasheet);
           Report.float_cell (100.0 *. p.worst);
           Report.float_cell (100.0 *. p.battery);
         ])
       (data ()));
  Report.note
    "ultracaps retain >=90% capacitance at 100,000 cycles; batteries collapse within a few hundred"
