(** §5.4 — is flush-on-fail safe within the residual energy window?

    Combines Figure 7's windows with Figure 8's worst-case save times:
    the paper finds saves complete within 2–35 % of the window (windows
    2.5–80× larger than the save), and that explicit provisioning needs
    only a ≈0.5 F supercapacitor costing under $2. *)

open Wsp_sim

type row = {
  platform : Wsp_machine.Platform.t;
  psu : Wsp_power.Psu.spec;
  busy : bool;
  save_time : Time.t;  (** Worst case: all cache lines dirty. *)
  window : Time.t;
  fraction : float;  (** [save_time / window]. *)
}

val data : unit -> row list

val supercap_farads :
  Wsp_machine.Platform.t -> safety_factor:float -> float
(** Capacitance (12 V charged, 6 V usable floor) needed to power the
    worst-case state save at busy draw, times the safety factor. *)

val run : full:bool -> unit
