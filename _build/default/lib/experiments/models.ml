open Wsp_sim
open Wsp_nvheap
open Wsp_store

type row = {
  label : string;
  per_op_read : Time.t;
  per_op_mixed : Time.t;
  per_op_update : Time.t;
  footprint_factor : float;
}

let data ?(entries = 5000) ?(ops = 20_000) ?(seed = 31) () =
  let heap_row label config =
    let per_op p =
      (Workload.run_hash_benchmark ~entries ~ops
         ~heap_size:(Units.Size.mib 32) ~config ~update_prob:p ~seed ())
        .Workload.per_op
    in
    {
      label;
      per_op_read = per_op 0.0;
      per_op_mixed = per_op 0.5;
      per_op_update = per_op 1.0;
      footprint_factor = 1.0;
    }
  in
  let block_row =
    let run p =
      Workload.run_block_benchmark ~entries ~ops ~heap_size:(Units.Size.mib 32)
        ~update_prob:p ~seed ()
    in
    let r0 = run 0.0 and r5 = run 0.5 and r1 = run 1.0 in
    {
      label = "Block-based (RAMdisk journal)";
      per_op_read = r0.Workload.block_per_op;
      per_op_mixed = r5.Workload.block_per_op;
      per_op_update = r1.Workload.block_per_op;
      footprint_factor =
        float_of_int (r5.Workload.table_bytes + r5.Workload.journal_bytes)
        /. float_of_int r5.Workload.table_bytes;
    }
  in
  [
    block_row;
    heap_row "NV-heap (FoC + STM, Mnemosyne)" Config.foc_stm;
    heap_row "NV-heap (FoC + UL)" Config.foc_ul;
    heap_row "Whole-system (WSP, FoF)" Config.fof;
  ]

let run ~full =
  Report.heading "Models (3.2): block-based vs persistent heap vs whole-system";
  let rows = if full then data ~entries:20_000 ~ops:100_000 () else data () in
  Report.table
    ~header:
      [ "Model"; "read-only us/op"; "50% upd us/op"; "update us/op"; "state copies" ]
    (List.map
       (fun r ->
         [
           r.label;
           Report.time_us_cell r.per_op_read;
           Report.time_us_cell r.per_op_mixed;
           Report.time_us_cell r.per_op_update;
           Report.float_cell r.footprint_factor;
         ])
       rows);
  Report.note
    "block persistence duplicates state (in-memory copy + blocks; the append-only journal shown here grows further until compacted) and pays a syscall + block transfer per update; WSP pays nothing"
