(** Plain-text rendering for experiment output: headed ASCII tables and
    series, printed to stdout in the shape the paper reports them. *)

val heading : string -> unit
(** An underlined section heading. *)

val note : string -> unit
(** An indented remark line. *)

val table : header:string list -> string list list -> unit
(** A column-aligned table. All rows must match the header's arity. *)

val series :
  xlabel:string -> ylabel:string -> (string * (float * float) list) list -> unit
(** Several named (x, y) series rendered as one table with the x values
    as rows — every series must cover the same x points. *)

val chart :
  ?width:int ->
  ?height:int ->
  ?logx:bool ->
  xlabel:string ->
  ylabel:string ->
  (string * (float * float) list) list ->
  unit
(** An ASCII scatter/line chart of the named series, each drawn with its
    own glyph, with a legend — the closest a terminal gets to the
    paper's figures. Series need not share x points. *)

val float_cell : ?decimals:int -> float -> string
val time_ms_cell : Wsp_sim.Time.t -> string
val time_us_cell : Wsp_sim.Time.t -> string
