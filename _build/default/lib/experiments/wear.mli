(** §2 — why PCM needs fine-grained wear leveling, quantified.

    A Zipfian write stream hammers a few hot lines; without leveling the
    hottest physical cell absorbs orders of magnitude more writes than
    the mean and dies early. Start-Gap rotation trades a small write
    overhead (one extra copy per ψ writes) for a near-ideal lifetime. *)

type row = {
  label : string;
  gap_interval : int option;  (** [None] = no leveling. *)
  wear_ratio : float;  (** max/mean physical wear. *)
  lifetime_fraction : float;  (** of the perfectly levelled lifetime. *)
  write_overhead : float;  (** extra writes from gap moves. *)
}

val data : ?lines:int -> ?writes:int -> ?theta:float -> ?seed:int -> unit -> row list
val run : full:bool -> unit
