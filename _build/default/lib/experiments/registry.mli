(** The experiment registry: every table and figure, addressable by name
    from the CLI and the benchmark harness. *)

type t = {
  name : string;  (** CLI identifier, e.g. ["table1"]. *)
  title : string;
  run : full:bool -> unit;
}

val all : t list
(** In paper order. *)

val find : string -> t option

val run_all : full:bool -> unit
