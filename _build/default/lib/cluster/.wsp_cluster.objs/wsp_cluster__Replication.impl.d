lib/cluster/replication.ml: Fmt Time Units Wsp_sim
