lib/cluster/recovery_storm.mli: Format Time Units Wsp_sim
