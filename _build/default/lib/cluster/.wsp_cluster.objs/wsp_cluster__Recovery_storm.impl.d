lib/cluster/recovery_storm.ml: Fmt Time Units Wsp_sim
