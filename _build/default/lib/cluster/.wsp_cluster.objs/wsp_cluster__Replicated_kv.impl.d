lib/cluster/replicated_kv.ml: Hashtbl List Queue Time Units Wsp_sim
