lib/cluster/replicated_kv.mli: Time Units Wsp_sim
