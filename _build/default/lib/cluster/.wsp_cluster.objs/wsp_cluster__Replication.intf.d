lib/cluster/replication.mli: Format Time Units Wsp_sim
