(** The recovery-storm model motivating the paper (§1–2, §6).

    A correlated power outage fells a fleet of main-memory servers; each
    must refresh its state before serving again. Without NVRAM the whole
    dataset is re-read from a shared back end (checkpoint read plus log
    replay), which is I/O bound and scales with fleet size. With WSP a
    server restores locally from its NVDIMMs and only fetches the
    updates it missed during the outage. *)

open Wsp_sim

type params = {
  servers : int;
  state_per_server : Units.Size.t;
  backend_bandwidth : Units.Bandwidth.t;
      (** Aggregate read bandwidth of the storage back end. *)
  update_rate_per_server : Units.Bandwidth.t;
      (** Rate at which each server's state is freshly updated. *)
  outage : Time.t;  (** How long the servers were down. *)
  nvdimm_restore : Time.t;  (** Local flash-to-DRAM restore time. *)
  replay_factor : float;
      (** Log replay costs this much more than streaming the bytes
          (CPU-bound reconstruction); 1.0 = free replay. *)
}

val default : params
(** A 32-server rack: 256 GB per server, a 0.5 GB/s back end, 30 s
    outage. *)

val single_server : params
(** The §2 arithmetic: one server, 256 GB at 0.5 GB/s — over 8 minutes
    even with the whole back end to itself. *)

type result = {
  params : params;
  full_recovery : Time.t;
      (** All servers re-read everything from the back end. *)
  wsp_recovery : Time.t;
      (** Local NVDIMM restore plus missed-update catch-up. *)
  speedup : float;
  backend_bytes_full : float;
  backend_bytes_wsp : float;
}

val run : params -> result

val recovery_timeline :
  params -> fraction:float -> [ `Full | `Wsp ] -> Time.t
(** Time until the given fraction of servers is back in service
    (servers recover in sequence as back-end bandwidth frees up). *)

val pp_result : Format.formatter -> result -> unit
