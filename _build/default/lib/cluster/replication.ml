open Wsp_sim

type params = {
  state : Units.Size.t;
  backend_bandwidth : Units.Bandwidth.t;
  update_rate : Units.Bandwidth.t;
  outage_mean : Time.t;
  permanent_failure_prob : float;
}

let default =
  {
    state = Units.Size.gib 256;
    backend_bandwidth = Units.Bandwidth.gib_per_s 0.5;
    update_rate = Units.Bandwidth.mib_per_s 8.0;
    outage_mean = Time.s 60.0;
    permanent_failure_prob = 0.05;
  }

type assessment = {
  delay : Time.t;
  expected_backend_bytes : float;
  expected_exposure : Time.t;
  rebuild_probability : float;
}

let assess p ~delay =
  if Time.is_negative delay then invalid_arg "Replication.assess: negative delay";
  let m = Time.to_s p.outage_mean in
  let d = Time.to_s delay in
  let q = 1.0 -. p.permanent_failure_prob in
  (* Probability the machine is back within the delay. *)
  let p_back = q *. (1.0 -. exp (-.d /. m)) in
  (* E[outage | outage <= d] for an exponential distribution. *)
  let e_outage_given_back =
    if d <= 0.0 then 0.0
    else m -. (d *. exp (-.d /. m) /. (1.0 -. exp (-.d /. m)))
  in
  let full = float_of_int (Units.Size.to_bytes p.state) in
  let missed =
    Units.Bandwidth.to_bytes_per_s p.update_rate *. e_outage_given_back
  in
  let rebuild_probability = 1.0 -. p_back in
  let expected_backend_bytes =
    (rebuild_probability *. full) +. (p_back *. missed)
  in
  (* Exposure: until return (if within the delay) or until the rebuild
     completes (delay + transfer) otherwise. *)
  let rebuild_time = d +. (full /. Units.Bandwidth.to_bytes_per_s p.backend_bandwidth) in
  let expected_exposure =
    (p_back *. e_outage_given_back) +. (rebuild_probability *. rebuild_time)
  in
  {
    delay;
    expected_backend_bytes;
    expected_exposure = Time.s expected_exposure;
    rebuild_probability;
  }

let optimal_delay p ~exposure_cost_per_s ~byte_cost =
  let cost delay =
    let a = assess p ~delay in
    (byte_cost *. a.expected_backend_bytes)
    +. (exposure_cost_per_s *. Time.to_s a.expected_exposure)
  in
  let best = ref (Time.zero, cost Time.zero) in
  let horizon = 10.0 *. Time.to_s p.outage_mean in
  let steps = 200 in
  for i = 1 to steps do
    let d = Time.s (horizon *. float_of_int i /. float_of_int steps) in
    let c = cost d in
    if c < snd !best then best := (d, c)
  done;
  !best

let pp_assessment ppf a =
  Fmt.pf ppf
    "delay=%a: E[backend]=%.2f GiB, E[exposure]=%a, rebuild p=%.2f" Time.pp
    a.delay
    (a.expected_backend_bytes /. (1024.0 ** 3.0))
    Time.pp a.expected_exposure a.rebuild_probability
