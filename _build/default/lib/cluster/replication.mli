(** The §6 "long outages" tradeoff: how long should a replicated system
    wait for a failed server to come back with NVRAM-intact state before
    rebuilding a replacement replica from the back end?

    Waiting saves a full state transfer when the machine returns (it only
    needs the updates it missed) but extends the window of reduced
    redundancy. Outage durations are exponential with a given mean; with
    some probability the machine never returns (hardware death). *)

open Wsp_sim

type params = {
  state : Units.Size.t;
  backend_bandwidth : Units.Bandwidth.t;
  update_rate : Units.Bandwidth.t;  (** Fresh-update rate of the dataset. *)
  outage_mean : Time.t;
  permanent_failure_prob : float;
}

val default : params

type assessment = {
  delay : Time.t;
  expected_backend_bytes : float;
  expected_exposure : Time.t;
      (** Expected time spent with reduced redundancy. *)
  rebuild_probability : float;
      (** Chance the replacement replica ends up being built anyway. *)
}

val assess : params -> delay:Time.t -> assessment

val optimal_delay :
  params -> exposure_cost_per_s:float -> byte_cost:float -> Time.t * float
(** Grid-searches the re-instantiation delay minimising
    [byte_cost * E(bytes) + exposure_cost_per_s * E(exposure)]; returns
    the delay and its cost. *)

val pp_assessment : Format.formatter -> assessment -> unit
