open Wsp_sim

type t = {
  nvram : Nvram.t;
  base : int;
  block_size : int;
  blocks : int;
  syscall_latency : Time.t;
  mutable blocks_written : int;
}

let make ?(block_size = 4096) ?(syscall_latency = Time.ns 300.0) nvram ~base ~len () =
  if block_size <= 0 || block_size mod 8 <> 0 then
    invalid_arg "Blockstore: bad block size";
  if base mod 8 <> 0 || len < block_size then invalid_arg "Blockstore: bad region";
  {
    nvram;
    base;
    block_size;
    blocks = len / block_size;
    syscall_latency;
    blocks_written = 0;
  }

let create ?block_size ?syscall_latency nvram ~base ~len () =
  make ?block_size ?syscall_latency nvram ~base ~len ()

let attach = create

let block_size t = t.block_size
let block_count t = t.blocks

let addr_of t idx =
  if idx < 0 || idx >= t.blocks then invalid_arg "Blockstore: block out of range";
  t.base + (idx * t.block_size)

let write_block t ~idx buf =
  if Bytes.length buf <> t.block_size then
    invalid_arg "Blockstore.write_block: buffer is not one block";
  let addr = addr_of t idx in
  Nvram.charge t.nvram t.syscall_latency;
  (* The kernel copies the block into NVRAM pages with non-temporal
     stores and fences once — the cheapest durable block write. *)
  for w = 0 to (t.block_size / 8) - 1 do
    Nvram.write_u64_nt t.nvram ~addr:(addr + (8 * w)) (Bytes.get_int64_le buf (8 * w))
  done;
  Nvram.fence t.nvram;
  t.blocks_written <- t.blocks_written + 1

let read_block t ~idx =
  let addr = addr_of t idx in
  Nvram.charge t.nvram t.syscall_latency;
  Nvram.read_bytes t.nvram ~addr ~len:t.block_size

let blocks_written t = t.blocks_written
let bytes_written t = t.blocks_written * t.block_size
