open Wsp_sim

type logging = No_log | Undo | Redo

type t = {
  name : string;
  logging : logging;
  stm : bool;
  flush_on_commit : bool;
}

let foc_stm = { name = "FoC + STM"; logging = Redo; stm = true; flush_on_commit = true }
let foc_ul = { name = "FoC + UL"; logging = Undo; stm = false; flush_on_commit = true }
let fof_stm = { name = "FoF + STM"; logging = Redo; stm = true; flush_on_commit = false }
let fof_ul = { name = "FoF + UL"; logging = Undo; stm = false; flush_on_commit = false }
let fof = { name = "FoF"; logging = No_log; stm = false; flush_on_commit = false }
let all = [ foc_stm; foc_ul; fof_stm; fof_ul; fof ]

let normalize s =
  String.lowercase_ascii (String.concat "" (String.split_on_char ' ' s))

let by_name s =
  let s = normalize s in
  List.find_opt (fun c -> normalize c.name = s) all

let is_durable_without_wsp t = t.flush_on_commit

module Costs = struct
  type costs = {
    tx_begin : Time.t;
    tx_commit_base : Time.t;
    stm_read : Time.t;
    stm_write : Time.t;
    stm_validate : Time.t;
    log_word_cpu : Time.t;
  }

  let default =
    {
      tx_begin = Time.ns 40.0;
      tx_commit_base = Time.ns 25.0;
      stm_read = Time.ns 55.0;
      stm_write = Time.ns 48.0;
      stm_validate = Time.ns 8.0;
      log_word_cpu = Time.ns 4.0;
    }
end
