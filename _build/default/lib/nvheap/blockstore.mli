(** Block-based persistence on NVRAM (§3.2, model 1).

    A persistent RAMdisk / buffer cache: applications persist state by
    writing whole blocks through a system-call interface. The paper
    argues this model is the worst use of NVRAM — it duplicates state
    (one copy in the application's DRAM representation, one in blocks),
    and pays block-transfer and system-call overheads on every update.
    This module exists so that claim can be measured (see the [models]
    experiment).

    Blocks are written through to NVRAM with non-temporal copies plus a
    fence, so a completed {!write_block} is durable without any WSP
    support — like the flush-on-commit heaps, the cost is paid at
    runtime. *)

open Wsp_sim

type t

val create :
  ?block_size:int ->
  ?syscall_latency:Time.t ->
  Nvram.t ->
  base:int ->
  len:int ->
  unit ->
  t
(** Formats a block device over the NVRAM region. Defaults: 4 KiB
    blocks, 300 ns per system call. *)

val attach :
  ?block_size:int -> ?syscall_latency:Time.t -> Nvram.t -> base:int -> len:int -> unit -> t
(** Adopts an existing device (post-crash). *)

val block_size : t -> int
val block_count : t -> int

val write_block : t -> idx:int -> Bytes.t -> unit
(** Writes one full block durably: system call + non-temporal copy +
    fence. The buffer must be exactly one block long. *)

val read_block : t -> idx:int -> Bytes.t
(** Reads one block: system call + copy. *)

val blocks_written : t -> int
val bytes_written : t -> int
(** Cumulative traffic, for the state-duplication accounting. *)
