(** The five persistence configurations of Figure 5.

    Two axes: {e when} transient state reaches NVRAM (flush-on-commit at
    every transaction, vs. flush-on-fail once at power failure), and
    {e what bookkeeping} runs during execution (full STM instrumentation
    with redo logging, plain undo logging, or nothing). *)

open Wsp_sim

type logging = No_log | Undo | Redo

type t = {
  name : string;
  logging : logging;
  stm : bool;  (** Read/write-set instrumentation and validation. *)
  flush_on_commit : bool;
      (** Synchronous durability at commit: fenced non-temporal log
          appends plus cache-line flushes of updated data. *)
}

val foc_stm : t
(** Flush-on-commit + STM: the default Mnemosyne configuration. *)

val foc_ul : t
(** Flush-on-commit + undo logging, no STM (the authors' minimal
    NV-heap). *)

val fof_stm : t
(** Flush-on-fail + STM: instrumentation and logging stay in-cache. *)

val fof_ul : t
(** Flush-on-fail + undo logging, in-cache. *)

val fof : t
(** Flush-on-fail, no transactions or logging: plain WSP operation. *)

val all : t list
(** In the paper's legend order. *)

val by_name : string -> t option

val is_durable_without_wsp : t -> bool
(** Whether committed transactions survive a power failure {e without}
    the WSP cache flush (true only for flush-on-commit configurations). *)

(** {1 Cost model}

    CPU-side costs of the transactional machinery, charged on top of the
    memory-system latencies the NVRAM model accounts for. Values are
    calibrated against Figure 5 (see DESIGN.md §4 and EXPERIMENTS.md). *)

module Costs : sig
  type costs = {
    tx_begin : Time.t;  (** Creating a transactional context. *)
    tx_commit_base : Time.t;
    stm_read : Time.t;  (** Per instrumented read. *)
    stm_write : Time.t;  (** Per write-set insertion. *)
    stm_validate : Time.t;  (** Per read-set entry validated at commit. *)
    log_word_cpu : Time.t;  (** Formatting one log word. *)
  }

  val default : costs
end
