lib/nvheap/rawlog.ml: Array Int32 Int64 List Nvram
