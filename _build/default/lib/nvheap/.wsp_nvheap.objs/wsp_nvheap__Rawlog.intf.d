lib/nvheap/rawlog.mli: Nvram
