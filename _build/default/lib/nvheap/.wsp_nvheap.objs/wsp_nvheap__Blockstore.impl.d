lib/nvheap/blockstore.ml: Bytes Nvram Time Wsp_sim
