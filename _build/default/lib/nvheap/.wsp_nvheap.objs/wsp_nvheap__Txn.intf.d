lib/nvheap/txn.mli: Config Nvram Rawlog
