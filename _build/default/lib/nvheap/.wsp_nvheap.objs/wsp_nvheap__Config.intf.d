lib/nvheap/config.mli: Time Wsp_sim
