lib/nvheap/alloc.ml: Fmt Int64 List Nvram
