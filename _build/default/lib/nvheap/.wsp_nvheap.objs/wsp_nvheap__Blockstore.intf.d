lib/nvheap/blockstore.mli: Bytes Nvram Time Wsp_sim
