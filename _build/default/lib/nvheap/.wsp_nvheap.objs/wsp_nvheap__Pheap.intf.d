lib/nvheap/pheap.mli: Alloc Config Nvram Time Txn Units Wsp_machine Wsp_sim
