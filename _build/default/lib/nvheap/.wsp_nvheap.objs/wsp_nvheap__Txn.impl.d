lib/nvheap/txn.ml: Array Config Hashtbl Int64 List Nvram Option Rawlog Time Wsp_sim
