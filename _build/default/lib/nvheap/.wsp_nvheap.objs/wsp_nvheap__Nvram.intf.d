lib/nvheap/nvram.mli: Bytes Time Units Wsp_machine Wsp_sim
