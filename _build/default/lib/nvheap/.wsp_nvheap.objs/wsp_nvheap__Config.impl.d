lib/nvheap/config.ml: List String Time Wsp_sim
