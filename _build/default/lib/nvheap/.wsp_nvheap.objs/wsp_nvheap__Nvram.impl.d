lib/nvheap/nvram.ml: Bytes Char Fmt Hashtbl Queue Time Units Wsp_machine Wsp_sim
