lib/nvheap/alloc.mli: Nvram
