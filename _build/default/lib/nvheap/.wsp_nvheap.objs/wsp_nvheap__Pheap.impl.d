lib/nvheap/pheap.ml: Alloc Config Int64 Nvram Rawlog Txn Units Wsp_sim
