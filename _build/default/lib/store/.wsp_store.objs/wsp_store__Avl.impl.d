lib/store/avl.ml: Fmt Int64 List Option Pheap Wsp_nvheap
