lib/store/checkpoint.mli: Pheap Time Units Wsp_nvheap Wsp_sim
