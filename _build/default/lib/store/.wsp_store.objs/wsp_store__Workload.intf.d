lib/store/workload.mli: Config Format Rng Time Units Wsp_machine Wsp_nvheap Wsp_sim
