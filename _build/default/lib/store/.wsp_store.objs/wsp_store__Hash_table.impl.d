lib/store/hash_table.ml: Fmt Int64 List Option Pheap Wsp_nvheap
