lib/store/workload.ml: Array Avl Block_kv Blockstore Btree Config Fmt Hash_table Hashtbl Int64 Nvram Pheap Rng Skiplist Time Units Wsp_nvheap Wsp_sim
