lib/store/block_kv.ml: Blockstore Bytes Hash_table Int64 Wsp_nvheap
