lib/store/hash_table.mli: Pheap Wsp_nvheap
