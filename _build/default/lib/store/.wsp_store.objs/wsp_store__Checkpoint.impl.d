lib/store/checkpoint.ml: Bytes List Nvram Pheap Units Wsp_nvheap Wsp_sim
