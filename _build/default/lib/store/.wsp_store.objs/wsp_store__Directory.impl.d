lib/store/directory.ml: Array Avl Config Fmt Hash_table Int64 Nvram Pheap Rng Stdlib Time Units Wsp_nvheap Wsp_sim
