lib/store/block_kv.mli: Blockstore Pheap Wsp_nvheap
