lib/store/directory.mli: Config Format Pheap Rng Time Units Wsp_nvheap Wsp_sim
