lib/store/skiplist.ml: Array Fmt Hashtbl Int64 List Option Pheap Rng Wsp_nvheap Wsp_sim
