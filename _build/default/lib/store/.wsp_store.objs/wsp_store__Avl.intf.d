lib/store/avl.mli: Pheap Wsp_nvheap
