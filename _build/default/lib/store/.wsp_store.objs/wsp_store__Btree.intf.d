lib/store/btree.mli: Pheap Wsp_nvheap
