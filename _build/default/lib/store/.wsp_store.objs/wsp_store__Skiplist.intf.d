lib/store/skiplist.mli: Pheap Rng Wsp_nvheap Wsp_sim
