lib/store/btree.ml: Int64 List Option Pheap Wsp_nvheap
