(** Back-end checkpoints: the last-resort recovery tier (§3.1, §3.2).

    WSP makes NVRAM the {e first} resort after a crash; a storage back
    end remains necessary for failures NVRAM cannot cover (torn saves,
    hardware loss, software corruption). Applications therefore
    periodically checkpoint their state to the back end and fall back to
    the most recent checkpoint when the local image is unusable — paying
    the full transfer cost and losing updates made since the checkpoint.

    The back end here is a simple bounded-bandwidth object store holding
    named snapshots of a heap region. *)

open Wsp_sim
open Wsp_nvheap

type backend

val create_backend : ?bandwidth:Units.Bandwidth.t -> unit -> backend
(** Default bandwidth: 0.5 GiB/s, the paper's high-end storage array. *)

val stored_names : backend -> string list
val stored_bytes : backend -> int

val checkpoint : backend -> name:string -> Pheap.t -> Time.t
(** Snapshots the heap's current logical contents (root slot, log and
    heap region) to the back end under [name], overwriting any previous
    snapshot with that name. Returns the transfer time; the heap's clock
    is charged the same amount. *)

val restore : backend -> name:string -> Pheap.t -> Time.t
(** Overwrites the heap region with the named snapshot and flushes it to
    NVRAM. Raises [Not_found] for an unknown name. *)

val latest : backend -> string option
(** Name of the most recently written snapshot. *)
