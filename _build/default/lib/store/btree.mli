(** A B-tree in a persistent heap.

    The kind of "on-disk" structure §7 discusses (CDDS B-Trees build a
    crash-consistent one by hand); under WSP an ordinary volatile-style
    B-tree needs no versioning or flushing at all. Minimum degree 4:
    nodes hold 3–7 keys and fit in three cache lines, the layout a
    main-memory database would pick.

    Standard CLRS algorithms: preemptive splits on the way down for
    insertion; borrow/merge rebalancing for deletion. *)

open Wsp_nvheap

type t

val min_degree : int

val create : Pheap.t -> t
(** Allocates an empty root leaf and publishes it as the heap root. *)

val attach : Pheap.t -> t
(** Re-adopts the tree published as the heap root (post-recovery). *)

val heap : t -> Pheap.t

val insert : t -> key:int64 -> value:int64 -> unit
(** Inserts or overwrites. *)

val find : t -> int64 -> int64 option
val mem : t -> int64 -> bool

val delete : t -> int64 -> bool
(** [true] if the key was present. *)

val size : t -> int
val height : t -> int
val to_list : t -> (int64 * int64) list

val check : t -> (unit, string) result
(** Verifies key ordering, per-node occupancy bounds and uniform leaf
    depth. *)
