(** A skip list in a persistent heap.

    One of the data structures §7 names (NV-heaps "allow use of … hash
    tables, binary trees, and skip lists"); under WSP it needs no special
    treatment at all — this implementation is an ordinary probabilistic
    skip list whose nodes happen to live in NVRAM.

    Tower levels are drawn from a deterministic, seedable generator; the
    generator itself is volatile state (losing it across a crash merely
    changes future coin flips, never the structure's correctness). *)

open Wsp_sim
open Wsp_nvheap

type t

val max_level : int

val create : ?seed:int -> Pheap.t -> t
(** Allocates the head tower and publishes it as the heap root. *)

val attach : ?seed:int -> Pheap.t -> t
(** Re-adopts the list published as the heap root (post-recovery). *)

val heap : t -> Pheap.t

val insert : t -> key:int64 -> value:int64 -> unit
(** Inserts or overwrites. *)

val find : t -> int64 -> int64 option
val mem : t -> int64 -> bool
val delete : t -> int64 -> bool
val size : t -> int
val to_list : t -> (int64 * int64) list

val level_of : t -> int64 -> int option
(** Tower height of a present key — test instrumentation. *)

val check : t -> (unit, string) result
(** Verifies key ordering on level 0 and that every level's chain is a
    subsequence of level 0. *)

val rng : t -> Rng.t
