open Wsp_sim
open Wsp_nvheap

type backend = {
  bandwidth : Units.Bandwidth.t;
  mutable snapshots : (string * Bytes.t) list;  (* newest first *)
}

let create_backend ?(bandwidth = Units.Bandwidth.gib_per_s 0.5) () =
  { bandwidth; snapshots = [] }

let stored_names b = List.map fst b.snapshots

let stored_bytes b =
  List.fold_left (fun acc (_, data) -> acc + Bytes.length data) 0 b.snapshots

let checkpoint b ~name heap =
  let nvram = Pheap.nvram heap in
  (* Reading through the cache sees the newest (possibly unflushed)
     application state — a checkpoint is taken by the running process. *)
  let data =
    Nvram.read_bytes nvram ~addr:(Pheap.base heap) ~len:(Pheap.region_len heap)
  in
  b.snapshots <- (name, data) :: List.remove_assoc name b.snapshots;
  let cost = Units.Bandwidth.transfer_time b.bandwidth (Bytes.length data) in
  Nvram.charge nvram cost;
  cost

let restore b ~name heap =
  let data = List.assoc name b.snapshots in
  let nvram = Pheap.nvram heap in
  Nvram.write_bytes nvram ~addr:(Pheap.base heap) data;
  (* The restored image must be durable before the server resumes. *)
  Nvram.wbinvd nvram;
  let cost = Units.Bandwidth.transfer_time b.bandwidth (Bytes.length data) in
  Nvram.charge nvram cost;
  cost

let latest b = match b.snapshots with [] -> None | (name, _) :: _ -> Some name
