open Wsp_sim
open Wsp_nvheap

let max_level = 16

(* Node layout: [key][value][level][next_0 .. next_{level-1}]. The head
   tower has [max_level] pointers and a sentinel key that is never
   compared. *)
let f_key = 0
let f_value = 8
let f_level = 16
let f_next = 24
let node_size level = f_next + (8 * level)

type t = { heap : Pheap.t; head : int; rng : Rng.t }

let read t addr off = Pheap.read_u64 t.heap ~addr:(addr + off)
let write t addr off v = Pheap.write_u64 t.heap ~addr:(addr + off) v
let next t node lvl = Int64.to_int (read t node (f_next + (8 * lvl)))
let set_next t node lvl target = write t node (f_next + (8 * lvl)) (Int64.of_int target)
let level_of_node t node = Int64.to_int (read t node f_level)

let create ?(seed = 1) heap =
  let head = Pheap.alloc heap (node_size max_level) in
  let t = { heap; head; rng = Rng.create ~seed } in
  write t head f_key Int64.min_int;
  write t head f_value 0L;
  write t head f_level (Int64.of_int max_level);
  for lvl = 0 to max_level - 1 do
    set_next t head lvl 0
  done;
  Pheap.set_root heap head;
  t

let attach ?(seed = 1) heap =
  let head = Pheap.root heap in
  if head = 0 then invalid_arg "Skiplist.attach: heap has no root";
  { heap; head; rng = Rng.create ~seed }

let heap t = t.heap
let rng t = t.rng

let random_level t =
  let rec flip level =
    if level < max_level && Rng.bool t.rng then flip (level + 1) else level
  in
  flip 1

(* The predecessor of [key] at every level, top-down. *)
let predecessors t key =
  let preds = Array.make max_level t.head in
  let node = ref t.head in
  for lvl = max_level - 1 downto 0 do
    let rec walk () =
      let succ = next t !node lvl in
      if succ <> 0 && Int64.compare (read t succ f_key) key < 0 then begin
        node := succ;
        walk ()
      end
    in
    walk ();
    preds.(lvl) <- !node
  done;
  preds

let find_node t key =
  let preds = predecessors t key in
  let candidate = next t preds.(0) 0 in
  if candidate <> 0 && Int64.equal (read t candidate f_key) key then
    Some candidate
  else None

let find t key =
  match find_node t key with
  | Some node -> Some (read t node f_value)
  | None -> None

let mem t key = Option.is_some (find_node t key)

let insert t ~key ~value =
  let preds = predecessors t key in
  let succ = next t preds.(0) 0 in
  if succ <> 0 && Int64.equal (read t succ f_key) key then
    write t succ f_value value
  else begin
    let level = random_level t in
    let node = Pheap.alloc t.heap (node_size level) in
    write t node f_key key;
    write t node f_value value;
    write t node f_level (Int64.of_int level);
    for lvl = 0 to level - 1 do
      set_next t node lvl (next t preds.(lvl) lvl);
      set_next t preds.(lvl) lvl node
    done
  end

let delete t key =
  match find_node t key with
  | None -> false
  | Some node ->
      let preds = predecessors t key in
      let level = level_of_node t node in
      for lvl = 0 to level - 1 do
        if next t preds.(lvl) lvl = node then
          set_next t preds.(lvl) lvl (next t node lvl)
      done;
      Pheap.free t.heap node;
      true

let fold t f acc =
  let rec go node acc =
    if node = 0 then acc
    else go (next t node 0) (f acc (read t node f_key) (read t node f_value))
  in
  go (next t t.head 0) acc

let size t = fold t (fun acc _ _ -> acc + 1) 0
let to_list t = List.rev (fold t (fun acc k v -> (k, v) :: acc) [])

let level_of t key =
  match find_node t key with
  | Some node -> Some (level_of_node t node)
  | None -> None

let check t =
  let exception Bad of string in
  try
    (* Level 0 must be strictly key-ordered. *)
    let rec ordered node =
      let succ = next t node 0 in
      if succ <> 0 then begin
        if node <> t.head
           && Int64.compare (read t node f_key) (read t succ f_key) >= 0
        then raise (Bad "level-0 order violation");
        ordered succ
      end
    in
    ordered t.head;
    (* Every upper-level chain must be a subsequence of level 0, and a
       node must appear in exactly the levels below its height. *)
    let level0 = Hashtbl.create 64 in
    let rec collect node =
      if node <> 0 then begin
        Hashtbl.replace level0 node (level_of_node t node);
        collect (next t node 0)
      end
    in
    collect (next t t.head 0);
    for lvl = 1 to max_level - 1 do
      let rec walk node =
        let succ = next t node lvl in
        if succ <> 0 then begin
          (match Hashtbl.find_opt level0 succ with
          | None -> raise (Bad (Fmt.str "level-%d node missing from level 0" lvl))
          | Some h when h <= lvl ->
              raise (Bad (Fmt.str "node in level %d above its height" lvl))
          | Some _ -> ());
          walk succ
        end
      in
      walk t.head
    done;
    Ok ()
  with Bad msg -> Error msg
