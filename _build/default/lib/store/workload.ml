open Wsp_sim
open Wsp_nvheap

type op = Lookup | Insert | Delete

let pick_op rng ~update_prob =
  if Rng.float rng 1.0 < update_prob then
    if Rng.bool rng then Insert else Delete
  else Lookup

module Key_pool = struct
  type t = {
    mutable keys : int64 array;
    mutable size : int;
    index : (int64, int) Hashtbl.t;
    mutable next_fresh : int64;
  }

  let create ?(capacity = 1024) () =
    {
      keys = Array.make (max 1 capacity) 0L;
      size = 0;
      index = Hashtbl.create (max 16 capacity);
      next_fresh = 1L;
    }

  let size t = t.size

  let fresh t =
    let k = t.next_fresh in
    t.next_fresh <- Int64.add k 1L;
    (* Spread keys over the hash space deterministically. *)
    Int64.mul k 0x5851F42D4C957F2DL

  let add t key =
    if not (Hashtbl.mem t.index key) then begin
      if t.size = Array.length t.keys then begin
        let keys' = Array.make (2 * t.size) 0L in
        Array.blit t.keys 0 keys' 0 t.size;
        t.keys <- keys'
      end;
      t.keys.(t.size) <- key;
      Hashtbl.add t.index key t.size;
      t.size <- t.size + 1
    end

  let random_present t rng =
    if t.size = 0 then None else Some t.keys.(Rng.int rng t.size)

  let nth_present t i =
    if t.size = 0 then None else Some t.keys.(i mod t.size)

  let remove_at t i =
    if t.size = 0 then None
    else begin
      let i = i mod t.size in
      let key = t.keys.(i) in
      let last = t.keys.(t.size - 1) in
      t.keys.(i) <- last;
      Hashtbl.replace t.index last i;
      Hashtbl.remove t.index key;
      t.size <- t.size - 1;
      Some key
    end

  let remove t rng =
    if t.size = 0 then None
    else begin
      let i = Rng.int rng t.size in
      let key = t.keys.(i) in
      let last = t.keys.(t.size - 1) in
      t.keys.(i) <- last;
      Hashtbl.replace t.index last i;
      Hashtbl.remove t.index key;
      t.size <- t.size - 1;
      Some key
    end
end

type result = {
  config : Config.t;
  ops : int;
  update_prob : float;
  elapsed : Time.t;
  per_op : Time.t;
  lookups : int;
  inserts : int;
  deletes : int;
  final_count : int;
}

let run_hash_benchmark ?(entries = 100_000) ?(ops = 1_000_000)
    ?(op_overhead = Time.ns 60.0) ?buckets ?(heap_size = Units.Size.mib 64)
    ?hierarchy ?(distribution = `Uniform) ~config ~update_prob ~seed () =
  if update_prob < 0.0 || update_prob > 1.0 then
    invalid_arg "run_hash_benchmark: update_prob out of range";
  let rng = Rng.create ~seed in
  let heap = Pheap.create ?hierarchy ~config ~size:heap_size () in
  let table = Hash_table.create ?buckets heap in
  let pool = Key_pool.create ~capacity:(2 * entries) () in
  let zipf =
    match distribution with
    | `Uniform -> None
    | `Zipfian theta -> Some (Rng.Zipf.create ~theta ~n:entries ())
  in
  let pick_present () =
    match zipf with
    | None -> Key_pool.random_present pool rng
    | Some gen -> Key_pool.nth_present pool (Rng.Zipf.draw gen rng)
  in
  let take_present () =
    match zipf with
    | None -> Key_pool.remove pool rng
    | Some gen -> Key_pool.remove_at pool (Rng.Zipf.draw gen rng)
  in
  let transactional = config.Config.logging <> Config.No_log in
  let in_tx f = if transactional then Pheap.with_tx heap f else f () in
  (* Populate phase — not measured. *)
  for _ = 1 to entries do
    let key = Key_pool.fresh pool in
    Key_pool.add pool key;
    in_tx (fun () -> Hash_table.insert table ~key ~value:(Int64.neg key))
  done;
  Pheap.reset_clock heap;
  let lookups = ref 0 and inserts = ref 0 and deletes = ref 0 in
  for _ = 1 to ops do
    Nvram.charge (Pheap.nvram heap) op_overhead;
    match pick_op rng ~update_prob with
    | Lookup -> (
        incr lookups;
        match pick_present () with
        | None -> ()
        | Some key -> ignore (in_tx (fun () -> Hash_table.find table key)))
    | Insert ->
        incr inserts;
        let key = Key_pool.fresh pool in
        Key_pool.add pool key;
        in_tx (fun () -> Hash_table.insert table ~key ~value:(Int64.neg key))
    | Delete -> (
        incr deletes;
        match take_present () with
        | None -> ()
        | Some key -> ignore (in_tx (fun () -> Hash_table.delete table key)))
  done;
  let elapsed = Pheap.clock heap in
  {
    config;
    ops;
    update_prob;
    elapsed;
    per_op = Time.div elapsed ops;
    lookups = !lookups;
    inserts = !inserts;
    deletes = !deletes;
    final_count = Hash_table.count table;
  }

let pp_result ppf r =
  Fmt.pf ppf "%-10s p=%.2f  %a/op  (%d ops in %a; %d/%d/%d l/i/d)"
    r.config.Config.name r.update_prob Time.pp r.per_op r.ops Time.pp r.elapsed
    r.lookups r.inserts r.deletes

type structure = Hash | Avl_tree | Skip_list | B_tree

let structure_name = function
  | Hash -> "hash table"
  | Avl_tree -> "AVL tree"
  | Skip_list -> "skip list"
  | B_tree -> "B-tree"

let structures = [ Hash; Avl_tree; Skip_list; B_tree ]

(* A first-class view of one persistent key-value structure. *)
type kv = {
  kv_insert : key:int64 -> value:int64 -> unit;
  kv_find : int64 -> int64 option;
  kv_delete : int64 -> bool;
  kv_count : unit -> int;
}

let kv_of_structure structure heap =
  match structure with
  | Hash ->
      let t = Hash_table.create heap in
      {
        kv_insert = Hash_table.insert t;
        kv_find = Hash_table.find t;
        kv_delete = Hash_table.delete t;
        kv_count = (fun () -> Hash_table.count t);
      }
  | Avl_tree ->
      let t = Avl.create heap in
      {
        kv_insert = Avl.insert t;
        kv_find = Avl.find t;
        kv_delete = Avl.delete t;
        kv_count = (fun () -> Avl.size t);
      }
  | Skip_list ->
      let t = Skiplist.create heap in
      {
        kv_insert = Skiplist.insert t;
        kv_find = Skiplist.find t;
        kv_delete = Skiplist.delete t;
        kv_count = (fun () -> Skiplist.size t);
      }
  | B_tree ->
      let t = Btree.create heap in
      {
        kv_insert = Btree.insert t;
        kv_find = Btree.find t;
        kv_delete = Btree.delete t;
        kv_count = (fun () -> Btree.size t);
      }

let run_structure_benchmark ?(entries = 20_000) ?(ops = 100_000)
    ?(op_overhead = Time.ns 60.0) ?(heap_size = Units.Size.mib 64) ~structure
    ~config ~update_prob ~seed () =
  let rng = Rng.create ~seed in
  let heap = Pheap.create ~config ~size:heap_size () in
  let transactional = config.Config.logging <> Config.No_log in
  let in_tx f = if transactional then Pheap.with_tx heap f else f () in
  (* Setup is unmeasured and untransactional, as in the paper's harness. *)
  let kv = kv_of_structure structure heap in
  let pool = Key_pool.create ~capacity:(2 * entries) () in
  for _ = 1 to entries do
    let key = Key_pool.fresh pool in
    Key_pool.add pool key;
    in_tx (fun () -> kv.kv_insert ~key ~value:(Int64.neg key))
  done;
  Pheap.reset_clock heap;
  let lookups = ref 0 and inserts = ref 0 and deletes = ref 0 in
  for _ = 1 to ops do
    Nvram.charge (Pheap.nvram heap) op_overhead;
    match pick_op rng ~update_prob with
    | Lookup -> (
        incr lookups;
        match Key_pool.random_present pool rng with
        | None -> ()
        | Some key -> ignore (in_tx (fun () -> kv.kv_find key)))
    | Insert ->
        incr inserts;
        let key = Key_pool.fresh pool in
        Key_pool.add pool key;
        in_tx (fun () -> kv.kv_insert ~key ~value:(Int64.neg key))
    | Delete -> (
        incr deletes;
        match Key_pool.remove pool rng with
        | None -> ()
        | Some key -> ignore (in_tx (fun () -> kv.kv_delete key)))
  done;
  let elapsed = Pheap.clock heap in
  {
    config;
    ops;
    update_prob;
    elapsed;
    per_op = Time.div elapsed ops;
    lookups = !lookups;
    inserts = !inserts;
    deletes = !deletes;
    final_count = kv.kv_count ();
  }

type block_result = {
  block_ops : int;
  block_update_prob : float;
  block_per_op : Time.t;
  journal_bytes : int;
  table_bytes : int;
}

let run_block_benchmark ?(entries = 100_000) ?(ops = 1_000_000)
    ?(op_overhead = Time.ns 60.0) ?(heap_size = Units.Size.mib 64) ~update_prob
    ~seed () =
  let rng = Rng.create ~seed in
  (* One NVRAM: the low half holds the in-memory representation, the
     high half is the block device holding the journal. *)
  let total = Units.Size.to_bytes heap_size in
  let nvram = Nvram.create ~size:heap_size () in
  let heap = Pheap.create_in ~config:Config.fof ~nvram ~base:0 ~len:(total / 2) () in
  let device =
    Blockstore.create nvram ~base:(total / 2) ~len:(total / 2) ()
  in
  let kv = Block_kv.create ~heap ~device () in
  let pool = Key_pool.create ~capacity:(2 * entries) () in
  for _ = 1 to entries do
    let key = Key_pool.fresh pool in
    Key_pool.add pool key;
    Block_kv.insert kv ~key ~value:(Int64.neg key)
  done;
  Nvram.reset_clock nvram;
  for _ = 1 to ops do
    Nvram.charge nvram op_overhead;
    match pick_op rng ~update_prob with
    | Lookup -> (
        match Key_pool.random_present pool rng with
        | None -> ()
        | Some key -> ignore (Block_kv.find kv key))
    | Insert ->
        let key = Key_pool.fresh pool in
        Key_pool.add pool key;
        Block_kv.insert kv ~key ~value:(Int64.neg key)
    | Delete -> (
        match Key_pool.remove pool rng with
        | None -> ()
        | Some key -> ignore (Block_kv.delete kv key))
  done;
  {
    block_ops = ops;
    block_update_prob = update_prob;
    block_per_op = Time.div (Nvram.clock nvram) ops;
    journal_bytes = Block_kv.block_bytes kv;
    table_bytes = Block_kv.memory_bytes kv;
  }
