(** An OpenLDAP-style directory server model (Table 1).

    The paper's benchmark runs an OpenLDAP server whose Berkeley DB back
    end has been replaced by an AVL tree in the Mnemosyne NV-heap, and
    inserts 100,000 randomly generated entries. This model keeps the
    same storage shape: an id-to-entry hash table holding the serialised
    entry blob, a dn-to-id AVL index and several attribute AVL indexes —
    all in one persistent heap — plus a fixed per-request protocol cost
    (ASN.1 decode, schema checks, ACLs) that is identical across
    persistence configurations. Each insert runs as one transaction. *)

open Wsp_sim
open Wsp_nvheap

type t

val create :
  ?config:Config.t ->
  ?entry_bytes:int ->
  ?indexes:int ->
  ?request_overhead:Time.t ->
  ?heap_size:Units.Size.t ->
  unit ->
  t
(** Defaults: 4 KiB serialised entries, 8 attribute indexes (equality
    plus substring indexes over the benchmark schema), 180 µs of
    protocol processing per request. *)

val attach : ?config:Config.t -> ?request_overhead:Time.t -> Pheap.t -> unit -> t
(** Re-adopts a directory from a recovered heap (the heap root is the
    directory's descriptor block). Raises [Invalid_argument] if the root
    is absent or not a directory. *)

val heap : t -> Pheap.t
val entry_count : t -> int

val add_entry : t -> Rng.t -> unit
(** Processes one LDAP add request with randomly generated attribute
    values. *)

val lookup_by_dn : t -> int64 -> int64 option
(** Returns the entry id bound to a DN key, if any. *)

val verify : t -> (unit, string) result
(** Cross-checks indexes against the entry table. *)

type result = {
  config : Config.t;
  entries : int;
  elapsed : Time.t;
  updates_per_s : float;
  per_op : Time.t;
}

val run_benchmark :
  ?entries:int ->
  ?config:Config.t ->
  ?entry_bytes:int ->
  ?indexes:int ->
  ?request_overhead:Time.t ->
  seed:int ->
  unit ->
  result
(** The Table 1 run: inserts [entries] (default 100,000) random entries
    into an empty directory and reports update throughput. *)

val pp_result : Format.formatter -> result -> unit
