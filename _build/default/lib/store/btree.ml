open Wsp_nvheap

let min_degree = 4
let max_keys = (2 * min_degree) - 1
let min_keys = min_degree - 1

(* Node layout:
   [leaf:8][nkeys:8][keys: max_keys*8][values: max_keys*8]
   [children: (max_keys+1)*8]  -> 192 bytes at degree 4. *)
let f_leaf = 0
let f_nkeys = 8
let f_keys = 16
let f_values = f_keys + (8 * max_keys)
let f_children = f_values + (8 * max_keys)
let node_size = f_children + (8 * (max_keys + 1))

type t = { heap : Pheap.t; root_cell : int }

let read t addr off = Pheap.read_u64 t.heap ~addr:(addr + off)
let write t addr off v = Pheap.write_u64 t.heap ~addr:(addr + off) v
let is_leaf t node = Int64.equal (read t node f_leaf) 1L
let nkeys t node = Int64.to_int (read t node f_nkeys)
let set_nkeys t node n = write t node f_nkeys (Int64.of_int n)
let key_at t node i = read t node (f_keys + (8 * i))
let set_key t node i v = write t node (f_keys + (8 * i)) v
let value_at t node i = read t node (f_values + (8 * i))
let set_value t node i v = write t node (f_values + (8 * i)) v
let child_at t node i = Int64.to_int (read t node (f_children + (8 * i)))
let set_child t node i c = write t node (f_children + (8 * i)) (Int64.of_int c)

let new_node t ~leaf =
  let node = Pheap.alloc t.heap node_size in
  write t node f_leaf (if leaf then 1L else 0L);
  set_nkeys t node 0;
  node

let create heap =
  let root_cell = Pheap.alloc heap 8 in
  let t = { heap; root_cell } in
  let root = new_node t ~leaf:true in
  Pheap.write_u64 heap ~addr:root_cell (Int64.of_int root);
  Pheap.set_root heap root_cell;
  t

let attach heap =
  let root_cell = Pheap.root heap in
  if root_cell = 0 then invalid_arg "Btree.attach: heap has no root";
  { heap; root_cell }

let heap t = t.heap
let root t = Int64.to_int (Pheap.read_u64 t.heap ~addr:t.root_cell)
let set_root t node = Pheap.write_u64 t.heap ~addr:t.root_cell (Int64.of_int node)

(* Index of the first key >= [key], or nkeys. *)
let lower_bound t node key =
  let n = nkeys t node in
  let rec go i =
    if i >= n then i
    else if Int64.compare (key_at t node i) key < 0 then go (i + 1)
    else i
  in
  go 0

let rec find_in t node key =
  let i = lower_bound t node key in
  if i < nkeys t node && Int64.equal (key_at t node i) key then
    Some (value_at t node i)
  else if is_leaf t node then None
  else find_in t (child_at t node i) key

let find t key = find_in t (root t) key
let mem t key = Option.is_some (find t key)

(* Shifts keys/values (and children when [with_children]) right by one
   from position [i]. *)
let shift_right t node ~from ~with_children =
  let n = nkeys t node in
  for j = n - 1 downto from do
    set_key t node (j + 1) (key_at t node j);
    set_value t node (j + 1) (value_at t node j)
  done;
  if with_children then
    for j = n downto from + 1 do
      set_child t node (j + 1) (child_at t node j)
    done

(* Splits the full [i]-th child of [parent] (which has room). *)
let split_child t parent i =
  let child = child_at t parent i in
  let leaf = is_leaf t child in
  let sibling = new_node t ~leaf in
  (* The top [min_keys] keys move to the new right sibling; the median
     moves up into the parent. *)
  set_nkeys t sibling min_keys;
  for j = 0 to min_keys - 1 do
    set_key t sibling j (key_at t child (j + min_degree));
    set_value t sibling j (value_at t child (j + min_degree))
  done;
  if not leaf then
    for j = 0 to min_degree - 1 do
      set_child t sibling j (child_at t child (j + min_degree))
    done;
  shift_right t parent ~from:i ~with_children:true;
  set_key t parent i (key_at t child min_keys);
  set_value t parent i (value_at t child min_keys);
  set_child t parent (i + 1) sibling;
  set_nkeys t parent (nkeys t parent + 1);
  set_nkeys t child min_keys

let rec insert_nonfull t node ~key ~value =
  let i = lower_bound t node key in
  if i < nkeys t node && Int64.equal (key_at t node i) key then
    set_value t node i value
  else if is_leaf t node then begin
    shift_right t node ~from:i ~with_children:false;
    set_key t node i key;
    set_value t node i value;
    set_nkeys t node (nkeys t node + 1)
  end
  else begin
    let i =
      if nkeys t (child_at t node i) = max_keys then begin
        split_child t node i;
        (* The median moved into position i: re-aim. *)
        let c = Int64.compare key (key_at t node i) in
        if c = 0 then begin
          set_value t node i value;
          raise Exit
        end
        else if c > 0 then i + 1
        else i
      end
      else i
    in
    insert_nonfull t (child_at t node i) ~key ~value
  end

let insert t ~key ~value =
  let r = root t in
  let r =
    if nkeys t r = max_keys then begin
      let new_root = new_node t ~leaf:false in
      set_child t new_root 0 r;
      set_root t new_root;
      split_child t new_root 0;
      new_root
    end
    else r
  in
  try insert_nonfull t r ~key ~value with Exit -> ()

(* --- deletion (CLRS, with borrow/merge) ----------------------------- *)

let shift_left t node ~from ~with_children =
  let n = nkeys t node in
  for j = from to n - 2 do
    set_key t node j (key_at t node (j + 1));
    set_value t node j (value_at t node (j + 1))
  done;
  if with_children then
    for j = from + 1 to n - 1 do
      set_child t node j (child_at t node (j + 1))
    done

(* Merges child [i+1] of [node] into child [i], pulling key [i] down. *)
let merge_children t node i =
  let left = child_at t node i and right = child_at t node (i + 1) in
  let ln = nkeys t left and rn = nkeys t right in
  set_key t left ln (key_at t node i);
  set_value t left ln (value_at t node i);
  for j = 0 to rn - 1 do
    set_key t left (ln + 1 + j) (key_at t right j);
    set_value t left (ln + 1 + j) (value_at t right j)
  done;
  if not (is_leaf t left) then
    for j = 0 to rn do
      set_child t left (ln + 1 + j) (child_at t right j)
    done;
  set_nkeys t left (ln + 1 + rn);
  shift_left t node ~from:i ~with_children:true;
  set_nkeys t node (nkeys t node - 1);
  Pheap.free t.heap right;
  left

(* Ensures child [i] of [node] has at least [min_degree] keys before we
   descend into it; returns the (possibly merged) child index. *)
let fortify t node i =
  let child = child_at t node i in
  if nkeys t child >= min_degree then child
  else begin
    let n = nkeys t node in
    if i > 0 && nkeys t (child_at t node (i - 1)) >= min_degree then begin
      (* Borrow the left sibling's last key through the parent. *)
      let left = child_at t node (i - 1) in
      let ln = nkeys t left in
      shift_right t child ~from:0 ~with_children:false;
      (* All child pointers move right by one — slot 0 receives the
         borrowed subtree (shift_right's child handling frees slot
         [from+1] for splits, not slot 0). *)
      if not (is_leaf t child) then
        for j = nkeys t child downto 0 do
          set_child t child (j + 1) (child_at t child j)
        done;
      set_key t child 0 (key_at t node (i - 1));
      set_value t child 0 (value_at t node (i - 1));
      if not (is_leaf t child) then set_child t child 0 (child_at t left ln);
      set_key t node (i - 1) (key_at t left (ln - 1));
      set_value t node (i - 1) (value_at t left (ln - 1));
      set_nkeys t left (ln - 1);
      set_nkeys t child (nkeys t child + 1);
      child
    end
    else if i < n && nkeys t (child_at t node (i + 1)) >= min_degree then begin
      (* Borrow the right sibling's first key through the parent. *)
      let right = child_at t node (i + 1) in
      let cn = nkeys t child in
      set_key t child cn (key_at t node i);
      set_value t child cn (value_at t node i);
      if not (is_leaf t child) then
        set_child t child (cn + 1) (child_at t right 0);
      set_key t node i (key_at t right 0);
      set_value t node i (value_at t right 0);
      shift_left t right ~from:0 ~with_children:false;
      (* Dropping the right sibling's first subtree shifts every child
         pointer left by one (shift_left's child handling removes slot
         [from+1] for merges, not slot 0). *)
      if not (is_leaf t right) then
        for j = 0 to nkeys t right - 1 do
          set_child t right j (child_at t right (j + 1))
        done;
      set_nkeys t right (nkeys t right - 1);
      set_nkeys t child (cn + 1);
      child
    end
    else if i < n then merge_children t node i
    else merge_children t node (i - 1)
  end

let rec max_entry t node =
  if is_leaf t node then
    let n = nkeys t node in
    (key_at t node (n - 1), value_at t node (n - 1))
  else max_entry t (child_at t node (nkeys t node))

let rec min_entry t node =
  if is_leaf t node then (key_at t node 0, value_at t node 0)
  else min_entry t (child_at t node 0)

let rec delete_from t node key =
  let i = lower_bound t node key in
  if i < nkeys t node && Int64.equal (key_at t node i) key then
    if is_leaf t node then begin
      shift_left t node ~from:i ~with_children:false;
      set_nkeys t node (nkeys t node - 1);
      true
    end
    else begin
      let left = child_at t node i and right = child_at t node (i + 1) in
      if nkeys t left >= min_degree then begin
        let k, v = max_entry t left in
        set_key t node i k;
        set_value t node i v;
        delete_from t left k
      end
      else if nkeys t right >= min_degree then begin
        let k, v = min_entry t right in
        set_key t node i k;
        set_value t node i v;
        delete_from t right k
      end
      else begin
        let merged = merge_children t node i in
        delete_from t merged key
      end
    end
  else if is_leaf t node then false
  else begin
    let child = fortify t node i in
    delete_from t child key
  end

let delete t key =
  let r = root t in
  let removed = delete_from t r key in
  (* A root emptied by a merge shrinks the tree by one level. *)
  let r = root t in
  if nkeys t r = 0 && not (is_leaf t r) then begin
    set_root t (child_at t r 0);
    Pheap.free t.heap r
  end;
  removed

let fold t f acc =
  let rec go node acc =
    let n = nkeys t node in
    if is_leaf t node then
      let acc = ref acc in
      for i = 0 to n - 1 do
        acc := f !acc (key_at t node i) (value_at t node i)
      done;
      !acc
    else begin
      let acc = ref acc in
      for i = 0 to n - 1 do
        acc := go (child_at t node i) !acc;
        acc := f !acc (key_at t node i) (value_at t node i)
      done;
      go (child_at t node n) !acc
    end
  in
  go (root t) acc

let size t = fold t (fun acc _ _ -> acc + 1) 0
let to_list t = List.rev (fold t (fun acc k v -> (k, v) :: acc) [])

let height t =
  let rec go node acc =
    if is_leaf t node then acc else go (child_at t node 0) (acc + 1)
  in
  go (root t) 1

let check t =
  let exception Bad of string in
  try
    let root_node = root t in
    (* Returns leaf depth; checks occupancy and ordering per node. *)
    let rec go node ~is_root ~lo ~hi =
      let n = nkeys t node in
      if (not is_root) && n < min_keys then raise (Bad "underfull node");
      if n > max_keys then raise (Bad "overfull node");
      if is_root && is_leaf t node && n = 0 then 1
      else begin
        if n = 0 then raise (Bad "empty non-root node");
        for i = 0 to n - 1 do
          let k = key_at t node i in
          (match lo with
          | Some l when Int64.compare k l <= 0 -> raise (Bad "key below bound")
          | _ -> ());
          (match hi with
          | Some h when Int64.compare k h >= 0 -> raise (Bad "key above bound")
          | _ -> ());
          if i > 0 && Int64.compare (key_at t node (i - 1)) k >= 0 then
            raise (Bad "unsorted keys")
        done;
        if is_leaf t node then 1
        else begin
          let depth = ref None in
          for i = 0 to n do
            let lo = if i = 0 then lo else Some (key_at t node (i - 1)) in
            let hi = if i = n then hi else Some (key_at t node i) in
            let d = go (child_at t node i) ~is_root:false ~lo ~hi in
            match !depth with
            | None -> depth := Some d
            | Some d0 -> if d <> d0 then raise (Bad "ragged leaf depth")
          done;
          1 + Option.get !depth
        end
      end
    in
    ignore (go root_node ~is_root:true ~lo:None ~hi:None);
    Ok ()
  with Bad msg -> Error msg
