(** The Figure 5 microbenchmark data structure: an open-chaining hash
    table in a persistent heap.

    Layout: a header cell [buckets_addr, n_buckets, count], a bucket
    array of node addresses, and 24-byte chain nodes
    [key, value, next]. All accesses go through the heap's transactional
    dispatch. *)

open Wsp_nvheap

type t

val create : ?buckets:int -> Pheap.t -> t
(** [buckets] defaults to 131072 (the benchmark holds 100,000 entries). *)

val attach : Pheap.t -> t
(** Re-adopts the table published as the heap root. *)

val attach_at : Pheap.t -> addr:int -> t
(** Re-adopts a table by its header address — for applications that keep
    several structures behind one root descriptor. *)

val heap : t -> Pheap.t
val bucket_count : t -> int

val insert : t -> key:int64 -> value:int64 -> unit
(** Inserts or overwrites. *)

val find : t -> int64 -> int64 option
val mem : t -> int64 -> bool
val delete : t -> int64 -> bool

val count : t -> int
(** Entry count, O(1) from the header. *)

val to_list : t -> (int64 * int64) list

val check : t -> (unit, string) result
(** Verifies chain placement and the header count. *)
