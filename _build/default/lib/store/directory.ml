open Wsp_sim
open Wsp_nvheap

let descriptor_magic = 0x4449524543544F52L (* "DIRECTOR" *)

type t = {
  heap : Pheap.t;
  descriptor : int;
  id2entry : Hash_table.t;
  dn2id : Avl.t;
  attr_indexes : Avl.t array;
  entry_bytes : int;
  request_overhead : Time.t;
  transactional : bool;
  mutable next_id : int64;
}

let create ?(config = Config.fof) ?(entry_bytes = 4096) ?(indexes = 8)
    ?(request_overhead = Time.us 180.0) ?(heap_size = Units.Size.gib 1) () =
  if entry_bytes <= 0 || entry_bytes mod 8 <> 0 then
    invalid_arg "Directory.create: entry_bytes must be a positive multiple of 8";
  let heap =
    Pheap.create ~config ~log_size:(Units.Size.mib 16) ~size:heap_size ()
  in
  (* The directory owns the heap root through its id2entry table; the
     index trees are reachable from entry ids deterministically in this
     model, so they keep private root cells. *)
  let id2entry = Hash_table.create heap in
  let id2entry_root = Pheap.root heap in
  let dn2id = Avl.create heap in
  let dn2id_root = Pheap.root heap in
  let attr_indexes, index_roots =
    let pairs =
      Array.init indexes (fun _ ->
          let ix = Avl.create heap in
          (ix, Pheap.root heap))
    in
    (Array.map fst pairs, Array.map snd pairs)
  in
  (* Each structure published itself as heap root on creation; bind them
     all into one descriptor block and publish that, so the whole
     directory is re-discoverable after recovery:
     [magic][entry_bytes][next_id][indexes][id2entry][dn2id][index roots...] *)
  let descriptor = Pheap.alloc heap (8 * (6 + indexes)) in
  let w i v = Pheap.write_u64 heap ~addr:(descriptor + (8 * i)) v in
  w 0 descriptor_magic;
  w 1 (Int64.of_int entry_bytes);
  w 2 1L (* next_id *);
  w 3 (Int64.of_int indexes);
  w 4 (Int64.of_int id2entry_root);
  w 5 (Int64.of_int dn2id_root);
  Array.iteri (fun i root -> w (6 + i) (Int64.of_int root)) index_roots;
  Pheap.set_root heap descriptor;
  {
    heap;
    descriptor;
    id2entry;
    dn2id;
    attr_indexes;
    entry_bytes;
    request_overhead;
    transactional = config.Config.logging <> Config.No_log;
    next_id = 1L;
  }

let heap t = t.heap
let entry_count t = Hash_table.count t.id2entry

let in_tx t f = if t.transactional then Pheap.with_tx t.heap f else f ()

(* An attribute index stores (value, id) pairs; packing the id into the
   key's low bits keeps duplicate attribute values distinct. *)
let index_key ~value ~id =
  Int64.logor (Int64.shift_left value 20) (Int64.logand id 0xFFFFFL)

let add_entry t rng =
  Nvram.charge (Pheap.nvram t.heap) t.request_overhead;
  let id = t.next_id in
  t.next_id <- Int64.add id 1L;
  (* The id counter is part of the durable state. *)
  Pheap.write_u64 t.heap ~addr:(t.descriptor + 16) t.next_id;
  let dn_key = Rng.bits64 rng in
  let attr_values =
    Array.map (fun _ -> Int64.shift_right_logical (Rng.bits64 rng) 24)
      (Array.make (Array.length t.attr_indexes) ())
  in
  in_tx t (fun () ->
      (* Serialise the entry: a blob written word by word, as the BER
         encoder does. *)
      let blob = Pheap.alloc t.heap t.entry_bytes in
      let words = t.entry_bytes / 8 in
      for w = 0 to words - 1 do
        Pheap.write_u64 t.heap ~addr:(blob + (8 * w)) (Rng.bits64 rng)
      done;
      Hash_table.insert t.id2entry ~key:id ~value:(Int64.of_int blob);
      Avl.insert t.dn2id ~key:dn_key ~value:id;
      Array.iteri
        (fun i value ->
          Avl.insert t.attr_indexes.(i) ~key:(index_key ~value ~id) ~value:id)
        attr_values)

let attach ?(config = Config.fof) ?(request_overhead = Time.us 180.0) heap () =
  (* create_in formatted the heap; here the caller hands us a recovered
     one whose root is the descriptor block. *)
  let descriptor = Pheap.root heap in
  if descriptor = 0 then invalid_arg "Directory.attach: heap has no root";
  let r i = Pheap.read_u64 heap ~addr:(descriptor + (8 * i)) in
  if not (Int64.equal (r 0) descriptor_magic) then
    invalid_arg "Directory.attach: root is not a directory descriptor";
  let entry_bytes = Int64.to_int (r 1) in
  let next_id = r 2 in
  let indexes = Int64.to_int (r 3) in
  {
    heap;
    descriptor;
    id2entry = Hash_table.attach_at heap ~addr:(Int64.to_int (r 4));
    dn2id = Avl.attach_at heap ~addr:(Int64.to_int (r 5));
    attr_indexes =
      Array.init indexes (fun i ->
          Avl.attach_at heap ~addr:(Int64.to_int (r (6 + i))));
    entry_bytes;
    request_overhead;
    transactional = config.Config.logging <> Config.No_log;
    next_id;
  }

let lookup_by_dn t dn_key = Avl.find t.dn2id dn_key

let verify t =
  let entries = entry_count t in
  let dn_bindings = Avl.size t.dn2id in
  if dn_bindings <> entries then
    Error (Fmt.str "dn2id has %d bindings for %d entries" dn_bindings entries)
  else
    let bad_index =
      Array.exists (fun ix -> Avl.size ix <> entries) t.attr_indexes
    in
    if bad_index then Error "attribute index out of sync with entry table"
    else
      match Avl.check t.dn2id with
      | Error _ as e -> e
      | Ok () -> Hash_table.check t.id2entry

type result = {
  config : Config.t;
  entries : int;
  elapsed : Time.t;
  updates_per_s : float;
  per_op : Time.t;
}

let run_benchmark ?(entries = 100_000) ?(config = Config.fof) ?entry_bytes
    ?indexes ?request_overhead ~seed () =
  let rng = Rng.create ~seed in
  (* Size the heap to the workload: blob + index nodes + slack. *)
  let per_entry = (match entry_bytes with Some b -> b | None -> 4096) + 1024 in
  let heap_size =
    Units.Size.mib (Stdlib.max 64 (per_entry * entries / 1024 / 1024 * 2))
  in
  let t = create ~config ?entry_bytes ?indexes ?request_overhead ~heap_size () in
  Pheap.reset_clock t.heap;
  for _ = 1 to entries do
    add_entry t rng
  done;
  let elapsed = Pheap.clock t.heap in
  {
    config;
    entries;
    elapsed;
    updates_per_s = float_of_int entries /. Time.to_s elapsed;
    per_op = Time.div elapsed entries;
  }

let pp_result ppf r =
  Fmt.pf ppf "%-10s %d entries in %a: %.0f updates/s (%a/op)"
    r.config.Config.name r.entries Time.pp r.elapsed r.updates_per_s Time.pp
    r.per_op
