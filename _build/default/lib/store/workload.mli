(** Workload generation and the Figure 5 microbenchmark runner.

    The benchmark pre-populates a hash table, then runs a stream of
    random operations with a configurable update probability; updates are
    equal parts inserts (of fresh keys) and deletes (of present keys), so
    the table size stays near its initial value. Each operation runs in a
    transaction when the heap configuration has logging, mirroring how
    applications use Mnemosyne; per-operation application compute (key
    generation, hashing, loop) is charged explicitly. *)

open Wsp_sim
open Wsp_nvheap

type op = Lookup | Insert | Delete

val pick_op : Rng.t -> update_prob:float -> op
(** Updates with probability [update_prob], split evenly between insert
    and delete. *)

module Key_pool : sig
  (** The set of keys currently in the table, with O(1) random choice and
      removal, plus a fresh-key counter. *)

  type t

  val create : ?capacity:int -> unit -> t
  val size : t -> int
  val fresh : t -> int64
  (** A key never produced before; the caller is expected to add it. *)

  val add : t -> int64 -> unit
  val random_present : t -> Rng.t -> int64 option
  val remove : t -> Rng.t -> int64 option
  (** Removes and returns a uniformly random present key. *)

  val nth_present : t -> int -> int64 option
  (** The key at slot [i mod size] — rank-based access for skewed
      distributions. *)

  val remove_at : t -> int -> int64 option
  (** Removes the key at slot [i mod size]. *)
end

type result = {
  config : Config.t;
  ops : int;
  update_prob : float;
  elapsed : Time.t;  (** Simulated time over the measured phase. *)
  per_op : Time.t;
  lookups : int;
  inserts : int;
  deletes : int;
  final_count : int;  (** Entries left in the table. *)
}

val run_hash_benchmark :
  ?entries:int ->
  ?ops:int ->
  ?op_overhead:Time.t ->
  ?buckets:int ->
  ?heap_size:Units.Size.t ->
  ?hierarchy:Wsp_machine.Hierarchy.config ->
  ?distribution:[ `Uniform | `Zipfian of float ] ->
  config:Config.t ->
  update_prob:float ->
  seed:int ->
  unit ->
  result
(** Defaults: 100,000 entries and 1,000,000 operations as in the paper
    (callers scale down for quick runs), 60 ns of application compute per
    operation, the Intel C5528 DRAM hierarchy ([hierarchy] lets the SCM
    experiments substitute slower memory), and uniform key popularity
    ([`Zipfian theta] gives YCSB-style skew). *)

val pp_result : Format.formatter -> result -> unit

type structure = Hash | Avl_tree | Skip_list | B_tree

val structure_name : structure -> string
val structures : structure list

val run_structure_benchmark :
  ?entries:int ->
  ?ops:int ->
  ?op_overhead:Time.t ->
  ?heap_size:Units.Size.t ->
  structure:structure ->
  config:Config.t ->
  update_prob:float ->
  seed:int ->
  unit ->
  result
(** The hash-table benchmark generalised over the persistent data
    structure — the §7 transparency claim: under WSP any in-memory
    structure persists without modification, so the FoF-vs-FoC gap must
    hold for all of them. *)

type block_result = {
  block_ops : int;
  block_update_prob : float;
  block_per_op : Time.t;  (** Simulated time per operation. *)
  journal_bytes : int;  (** Block-device bytes holding the journal. *)
  table_bytes : int;  (** In-memory representation footprint. *)
}

val run_block_benchmark :
  ?entries:int ->
  ?ops:int ->
  ?op_overhead:Time.t ->
  ?heap_size:Units.Size.t ->
  update_prob:float ->
  seed:int ->
  unit ->
  block_result
(** The same workload as {!run_hash_benchmark} but persisted the
    block-based way (§3.2, model 1): every update also writes a journal
    block through a {!Wsp_nvheap.Blockstore} device. *)
