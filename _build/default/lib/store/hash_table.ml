open Wsp_nvheap

(* Header field offsets. *)
let h_buckets = 0
let h_n_buckets = 8
let h_count = 16
let header_size = 24

(* Node field offsets. *)
let f_key = 0
let f_value = 8
let f_next = 16
let node_size = 24

type t = { heap : Pheap.t; header : int }

let create ?(buckets = 131072) heap =
  if buckets <= 0 then invalid_arg "Hash_table.create: buckets <= 0";
  let header = Pheap.alloc heap header_size in
  let bucket_array = Pheap.alloc heap (8 * buckets) in
  for i = 0 to buckets - 1 do
    Pheap.write_u64 heap ~addr:(bucket_array + (8 * i)) 0L
  done;
  Pheap.write_u64 heap ~addr:(header + h_buckets) (Int64.of_int bucket_array);
  Pheap.write_u64 heap ~addr:(header + h_n_buckets) (Int64.of_int buckets);
  Pheap.write_u64 heap ~addr:(header + h_count) 0L;
  Pheap.set_root heap header;
  { heap; header }

let attach_at heap ~addr =
  if addr = 0 then invalid_arg "Hash_table.attach_at: null header";
  { heap; header = addr }

let attach heap =
  let header = Pheap.root heap in
  if header = 0 then invalid_arg "Hash_table.attach: heap has no root";
  { heap; header }

let heap t = t.heap
let read t addr off = Pheap.read_u64 t.heap ~addr:(addr + off)
let write t addr off v = Pheap.write_u64 t.heap ~addr:(addr + off) v
let bucket_count t = Int64.to_int (read t t.header h_n_buckets)
let count t = Int64.to_int (read t t.header h_count)

(* Fibonacci hashing of the key into a bucket index. *)
let bucket_of t key =
  let n = bucket_count t in
  let h = Int64.mul key 0x9E3779B97F4A7C15L in
  Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int n))

let bucket_addr t i =
  let arr = Int64.to_int (read t t.header h_buckets) in
  arr + (8 * i)

let bump_count t delta =
  write t t.header h_count (Int64.add (read t t.header h_count) (Int64.of_int delta))

let find_node t key =
  let rec go node =
    if node = 0 then None
    else if Int64.equal (read t node f_key) key then Some node
    else go (Int64.to_int (read t node f_next))
  in
  go (Int64.to_int (Pheap.read_u64 t.heap ~addr:(bucket_addr t (bucket_of t key))))

let insert t ~key ~value =
  match find_node t key with
  | Some node -> write t node f_value value
  | None ->
      let slot = bucket_addr t (bucket_of t key) in
      let head = Pheap.read_u64 t.heap ~addr:slot in
      let node = Pheap.alloc t.heap node_size in
      write t node f_key key;
      write t node f_value value;
      write t node f_next head;
      Pheap.write_u64 t.heap ~addr:slot (Int64.of_int node);
      bump_count t 1

let find t key =
  match find_node t key with
  | Some node -> Some (read t node f_value)
  | None -> None

let mem t key = Option.is_some (find_node t key)

let delete t key =
  let slot = bucket_addr t (bucket_of t key) in
  let rec go prev node =
    if node = 0 then false
    else if Int64.equal (read t node f_key) key then begin
      let next = read t node f_next in
      (match prev with
      | None -> Pheap.write_u64 t.heap ~addr:slot next
      | Some p -> write t p f_next next);
      Pheap.free t.heap node;
      bump_count t (-1);
      true
    end
    else go (Some node) (Int64.to_int (read t node f_next))
  in
  go None (Int64.to_int (Pheap.read_u64 t.heap ~addr:slot))

let fold t f acc =
  let n = bucket_count t in
  let acc = ref acc in
  for i = 0 to n - 1 do
    let rec chain node =
      if node <> 0 then begin
        acc := f !acc (read t node f_key) (read t node f_value);
        chain (Int64.to_int (read t node f_next))
      end
    in
    chain (Int64.to_int (Pheap.read_u64 t.heap ~addr:(bucket_addr t i)))
  done;
  !acc

let to_list t = List.rev (fold t (fun acc k v -> (k, v) :: acc) [])

let check t =
  let exception Bad of string in
  try
    let n = bucket_count t in
    let seen = ref 0 in
    for i = 0 to n - 1 do
      let rec chain node =
        if node <> 0 then begin
          let key = read t node f_key in
          if bucket_of t key <> i then
            raise (Bad (Fmt.str "key %Ld chained in wrong bucket %d" key i));
          incr seen;
          chain (Int64.to_int (read t node f_next))
        end
      in
      chain (Int64.to_int (Pheap.read_u64 t.heap ~addr:(bucket_addr t i)))
    done;
    if !seen <> count t then
      raise (Bad (Fmt.str "count %d but %d nodes found" (count t) !seen));
    Ok ()
  with Bad msg -> Error msg
