(** ATX power-supply model.

    The quantity of interest is the {e residual energy window}: the time
    between the PSU dropping its [PWR_OK] signal (input-power failure
    detected) and the first output-rail voltage droop. The window is
    limited both by the usable energy in the PSU's internal capacitance at
    the current DC load and by a controller hold-up cutoff; both vary
    wildly between PSU models, which is exactly what Figure 7 measures.
    Per-PSU parameters are calibrated to the paper's measured windows
    (DESIGN.md §4). *)

open Wsp_sim

type rail = V12 | V5 | V3_3

val rail_nominal : rail -> Units.Voltage.t
val rail_name : rail -> string
val all_rails : rail list

type spec = {
  name : string;
  rated : Units.Power.t;
  residual_energy : Units.Energy.t;
      (** Usable output-side energy after [PWR_OK] drops. *)
  max_hold : Time.t;  (** Controller cutoff on the hold-up time. *)
  collapse_tau : Time.t;  (** RC time constant of rail collapse. *)
  run_jitter : float;  (** Fractional run-to-run window variation. *)
}

(** The four PSUs measured in Figure 7. *)

val atx_400 : spec
val atx_525 : spec
val atx_750 : spec
val atx_1050 : spec

val specs : spec list
val spec_by_name : string -> spec option

type t

val create : engine:Engine.t -> spec:spec -> load:Units.Power.t -> t
val spec : t -> spec
val load : t -> Units.Power.t
val set_load : t -> Units.Power.t -> unit

val nominal_window : t -> Time.t
(** The deterministic residual-energy window at the current load:
    [min (residual_energy / load) max_hold]. *)

val on_pwr_ok_drop : t -> (Engine.t -> unit) -> unit
(** Registers a callback run when [PWR_OK] falls. *)

val on_output_lost : t -> (Engine.t -> unit) -> unit
(** Registers a callback run when the output rails droop out of
    regulation — from this instant host DRAM, caches and CPUs are dead. *)

val fail_input : t -> ?jitter:Rng.t -> unit -> unit
(** Injects an input-power failure now: [PWR_OK] drops immediately and
    the rails droop one residual window later (scaled by per-run jitter
    when an [Rng.t] is supplied). *)

val restore_input : t -> unit
(** Input power is back (a later boot): [PWR_OK] rises and the rails
    regulate again, so another failure can be injected. Registered
    callbacks stay armed. *)

val input_failed : t -> bool
val pwr_ok : t -> at:Time.t -> bool

val rail_voltage : t -> rail -> at:Time.t -> Units.Voltage.t
(** Instantaneous rail voltage: nominal until the window closes, then an
    exponential collapse. *)

val powered : t -> at:Time.t -> bool
(** Whether the host is still within regulation at [at]. *)
