(** The measurement instrument used in §5.2.

    Samples PSU signals at 100 kHz with additive measurement noise, and
    applies the paper's detection rule: an output-voltage drop is any
    250 µs interval in which a rail reads below 95 % of nominal; the
    residual energy window is the time from the [PWR_OK] drop to the first
    such interval. *)

open Wsp_sim

type t

val create : ?sample_rate_hz:float -> ?noise_sigma:float -> rng:Rng.t -> Psu.t -> t
(** Defaults: 100 kHz sampling, 0.3 % of nominal gaussian noise. *)

val capture :
  t -> from:Time.t -> until:Time.t -> rails:Psu.rail list -> Trace.t list
(** Records one trace per rail plus a trace named ["PWR_OK"] (5 V logic).
    Sampling is instantaneous w.r.t. simulated time. *)

val measure_window : t -> fail_at:Time.t -> until:Time.t -> Time.t option
(** Runs a capture around an already-injected input failure and applies
    the detection rule; [None] if no drop was observed before [until]. *)
