lib/power/oscilloscope.ml: List Psu Rng Time Trace Wsp_sim
