lib/power/power_monitor.ml: Engine List Psu Time Wsp_sim
