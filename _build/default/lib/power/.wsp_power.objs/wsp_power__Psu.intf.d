lib/power/psu.mli: Engine Rng Time Units Wsp_sim
