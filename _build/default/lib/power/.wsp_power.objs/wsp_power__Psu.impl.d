lib/power/psu.ml: Engine List Option Rng String Time Units Wsp_sim
