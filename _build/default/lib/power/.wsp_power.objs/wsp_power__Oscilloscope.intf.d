lib/power/oscilloscope.mli: Psu Rng Time Trace Wsp_sim
