lib/power/ultracap.ml: Float Time Units Wsp_sim
