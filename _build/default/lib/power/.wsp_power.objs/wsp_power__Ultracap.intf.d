lib/power/ultracap.mli: Time Units Wsp_sim
