lib/power/power_monitor.mli: Engine Psu Time Wsp_sim
