open Wsp_sim

type t = {
  psu : Psu.t;
  sample_rate_hz : float;
  noise_sigma : float;
  rng : Rng.t;
}

let create ?(sample_rate_hz = 100_000.0) ?(noise_sigma = 0.003) ~rng psu =
  assert (sample_rate_hz > 0.0);
  { psu; sample_rate_hz; noise_sigma; rng }

let sample_period t = Time.s (1.0 /. t.sample_rate_hz)

let noisy t v nominal =
  v +. Rng.gaussian t.rng ~mu:0.0 ~sigma:(t.noise_sigma *. nominal)

let capture t ~from ~until ~rails =
  let period = sample_period t in
  let traces =
    List.map (fun rail -> (Some rail, Trace.create ~name:(Psu.rail_name rail))) rails
    @ [ (None, Trace.create ~name:"PWR_OK") ]
  in
  let at = ref from in
  while Time.(!at <= until) do
    List.iter
      (fun (rail, trace) ->
        match rail with
        | Some rail ->
            let nominal = Psu.rail_nominal rail in
            let v = Psu.rail_voltage t.psu rail ~at:!at in
            Trace.record trace !at (noisy t v nominal)
        | None ->
            let v = if Psu.pwr_ok t.psu ~at:!at then 5.0 else 0.0 in
            Trace.record trace !at (noisy t v 5.0))
      traces;
    at := Time.add !at period
  done;
  List.map snd traces

let measure_window t ~fail_at ~until =
  let traces = capture t ~from:fail_at ~until ~rails:Psu.all_rails in
  let drops =
    List.filter_map
      (fun trace ->
        if Trace.name trace = "PWR_OK" then None
        else
          let nominal =
            List.find
              (fun rail -> Psu.rail_name rail = Trace.name trace)
              Psu.all_rails
            |> Psu.rail_nominal
          in
          Trace.first_crossing_below trace ~threshold:(0.95 *. nominal)
            ~hold:(Time.us 250.0))
      traces
  in
  match drops with
  | [] -> None
  | first :: rest ->
      let earliest = List.fold_left Time.min first rest in
      Some (Time.sub earliest fail_at)
