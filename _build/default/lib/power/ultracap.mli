(** Ultracapacitor (and, for contrast, battery) energy-cell models.

    NVDIMMs carry an ultracapacitor bank that powers the DRAM-to-flash
    save once system power is gone. Two properties matter: how much energy
    is usable above the module's minimum input voltage, and how the usable
    capacitance degrades with charge/discharge cycles (Figure 1: ultracaps
    lose ≈10 % over 100,000 cycles in the worst case; lead-acid and Li-ion
    batteries degrade severely within a few hundred cycles). *)

open Wsp_sim

type degradation_band = Best | Worst | Datasheet

type t

val create :
  ?v_min:Units.Voltage.t ->
  capacitance:Units.Capacitance.t ->
  v_charge:Units.Voltage.t ->
  unit ->
  t
(** [v_min] defaults to 6 V: the NVDIMM's internal regulator needs 3.3 V
    and its input stage stays usable down to 6 V (paper, footnote 1). *)

val capacitance_nominal : t -> Units.Capacitance.t

val capacitance_effective : t -> band:degradation_band -> Units.Capacitance.t
(** Nominal capacitance derated by cycle wear in the given band. *)

val capacitance_fraction : cycles:int -> band:degradation_band -> float
(** The Figure 1 curve: fraction of nominal capacitance remaining after
    the given number of charge/discharge cycles at elevated temperature
    and voltage. *)

val battery_capacity_fraction : cycles:int -> float
(** The Figure 1 battery contrast curve. *)

val voltage : t -> Units.Voltage.t
val cycles : t -> int

val usable_energy : t -> band:degradation_band -> Units.Energy.t
(** ½·C·(V² − V_min²) at the derated capacitance. *)

val can_supply : t -> band:degradation_band -> power:Units.Power.t -> lasting:Time.t -> bool

val supply_duration : t -> band:degradation_band -> power:Units.Power.t -> Time.t
(** How long the cell can hold the given draw before dropping under
    [v_min]. *)

val discharge : t -> power:Units.Power.t -> during:Time.t -> [ `Ok | `Exhausted ]
(** Draws energy, updating the terminal voltage (datasheet capacitance).
    [`Exhausted] once the voltage falls below [v_min]; the voltage then
    reads as its below-minimum value. *)

val recharge : t -> unit
(** Restores full charge and counts one charge/discharge cycle. *)

val voltage_after : t -> power:Units.Power.t -> during:Time.t -> Units.Voltage.t
(** Pure variant of {!discharge}: terminal voltage after the draw,
    without mutating the cell. *)
