open Wsp_sim

type rail = V12 | V5 | V3_3

let rail_nominal = function V12 -> 12.0 | V5 -> 5.0 | V3_3 -> 3.3
let rail_name = function V12 -> "DC 12V" | V5 -> "DC 5V" | V3_3 -> "DC 3.3V"
let all_rails = [ V12; V5; V3_3 ]

type spec = {
  name : string;
  rated : Units.Power.t;
  residual_energy : Units.Energy.t;
  max_hold : Time.t;
  collapse_tau : Time.t;
  run_jitter : float;
}

(* Calibration: windows in Figure 7 are
     400 W (AMD):   busy 346 ms, idle 392 ms
     525 W (AMD):   busy  22 ms, idle  71 ms
     750 W (Intel): busy  10 ms, idle  10 ms
    1050 W (Intel): busy  33 ms, idle  33 ms
   with AMD busy/idle loads of 150/60 W and Intel 350/150 W
   (Platform.power_busy/idle). Energy-limited PSUs reproduce the
   load-dependent pairs; cutoff-limited PSUs reproduce the equal pairs. *)

let atx_400 =
  {
    name = "400W PSU";
    rated = Units.Power.watts 400.0;
    residual_energy = Units.Energy.joules 51.9;
    max_hold = Time.ms 392.0;
    collapse_tau = Time.ms 9.0;
    run_jitter = 0.03;
  }

let atx_525 =
  {
    name = "525W PSU";
    rated = Units.Power.watts 525.0;
    residual_energy = Units.Energy.joules 4.26;
    max_hold = Time.ms 71.0;
    collapse_tau = Time.ms 6.0;
    run_jitter = 0.05;
  }

let atx_750 =
  {
    name = "750W PSU";
    rated = Units.Power.watts 750.0;
    residual_energy = Units.Energy.joules 20.0;
    max_hold = Time.ms 10.0;
    collapse_tau = Time.ms 5.0;
    run_jitter = 0.04;
  }

let atx_1050 =
  {
    name = "1050W PSU";
    rated = Units.Power.watts 1050.0;
    residual_energy = Units.Energy.joules 40.0;
    max_hold = Time.ms 33.0;
    collapse_tau = Time.ms 8.0;
    run_jitter = 0.04;
  }

let specs = [ atx_400; atx_525; atx_750; atx_1050 ]

let spec_by_name s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun spec -> String.lowercase_ascii spec.name = s) specs

type t = {
  engine : Engine.t;
  spec : spec;
  mutable load : Units.Power.t;
  mutable fail_at : Time.t option;  (* When PWR_OK dropped. *)
  mutable window : Time.t;  (* Window length chosen at failure time. *)
  mutable pwr_ok_cbs : (Engine.t -> unit) list;
  mutable output_lost_cbs : (Engine.t -> unit) list;
}

let create ~engine ~spec ~load =
  if Units.Power.to_watts load <= 0.0 then invalid_arg "Psu.create: load <= 0";
  {
    engine;
    spec;
    load;
    fail_at = None;
    window = Time.zero;
    pwr_ok_cbs = [];
    output_lost_cbs = [];
  }

let spec t = t.spec
let load t = t.load
let set_load t load = t.load <- load

let nominal_window t =
  Time.min (Units.Energy.duration_at t.spec.residual_energy t.load) t.spec.max_hold

let on_pwr_ok_drop t f = t.pwr_ok_cbs <- t.pwr_ok_cbs @ [ f ]
let on_output_lost t f = t.output_lost_cbs <- t.output_lost_cbs @ [ f ]

let fail_input t ?jitter () =
  match t.fail_at with
  | Some _ -> invalid_arg "Psu.fail_input: input already failed"
  | None ->
      let now = Engine.now t.engine in
      let scale =
        match jitter with
        | None -> 1.0
        | Some rng ->
            (* Worst-of-N experiments sample below nominal as well. *)
            1.0 +. Rng.uniform rng ~lo:(-.t.spec.run_jitter) ~hi:t.spec.run_jitter
      in
      t.fail_at <- Some now;
      t.window <- Time.scale (nominal_window t) scale;
      List.iter (fun f -> ignore (Engine.schedule t.engine ~after:Time.zero f)) t.pwr_ok_cbs;
      List.iter
        (fun f -> ignore (Engine.schedule t.engine ~after:t.window f))
        t.output_lost_cbs

let restore_input t =
  t.fail_at <- None;
  t.window <- Time.zero

let input_failed t = Option.is_some t.fail_at

let pwr_ok t ~at =
  match t.fail_at with None -> true | Some t0 -> Time.(at < t0)

let rail_voltage t rail ~at =
  let nominal = rail_nominal rail in
  match t.fail_at with
  | None -> nominal
  | Some t0 ->
      let lost = Time.add t0 t.window in
      if Time.(at <= lost) then nominal
      else
        let dt = Time.to_s (Time.sub at lost) in
        let tau = Time.to_s t.spec.collapse_tau in
        nominal *. exp (-.dt /. tau)

let powered t ~at =
  match t.fail_at with
  | None -> true
  | Some t0 -> Time.(at <= Time.add t0 t.window)
