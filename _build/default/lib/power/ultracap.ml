open Wsp_sim

type degradation_band = Best | Worst | Datasheet

type t = {
  capacitance : Units.Capacitance.t;
  v_charge : Units.Voltage.t;
  v_min : Units.Voltage.t;
  mutable voltage : Units.Voltage.t;
  mutable cycles : int;
}

let create ?(v_min = 6.0) ~capacitance ~v_charge () =
  if v_charge <= v_min then invalid_arg "Ultracap.create: v_charge <= v_min";
  { capacitance; v_charge; v_min; voltage = v_charge; cycles = 0 }

let capacitance_nominal t = t.capacitance

(* Figure 1: after 100,000 cycles at elevated temperature and voltage the
   worst case loses ~10 % of capacitance and the best case ~2 %; the
   datasheet line sits between. A sub-linear exponent matches the
   fast-then-flat shape of the published curves. *)
let capacitance_fraction ~cycles ~band =
  assert (cycles >= 0);
  let x = float_of_int cycles /. 100_000.0 in
  let loss_at_rated = match band with Best -> 0.02 | Datasheet -> 0.06 | Worst -> 0.10 in
  1.0 -. (loss_at_rated *. (x ** 0.7))

let battery_capacity_fraction ~cycles =
  (* Rechargeable batteries sustain only a few hundred cycles before
     capacity collapses: ~20 % loss per 100 cycles compounding. *)
  assert (cycles >= 0);
  0.8 ** (float_of_int cycles /. 100.0)

let capacitance_effective t ~band =
  t.capacitance *. capacitance_fraction ~cycles:t.cycles ~band

let voltage t = t.voltage
let cycles t = t.cycles

let usable_energy t ~band =
  let c = capacitance_effective t ~band in
  let e v = Units.Capacitance.stored_energy c v in
  Float.max 0.0 (e t.voltage -. e t.v_min)

let supply_duration t ~band ~power =
  Units.Energy.duration_at (usable_energy t ~band) power

let can_supply t ~band ~power ~lasting =
  Time.(supply_duration t ~band ~power >= lasting)

let voltage_after t ~power ~during =
  let drawn = Units.Energy.of_power_time power during in
  Units.Capacitance.voltage_after_discharge
    (capacitance_effective t ~band:Datasheet)
    ~v0:t.voltage ~drawn

let discharge t ~power ~during =
  t.voltage <- voltage_after t ~power ~during;
  if t.voltage < t.v_min then `Exhausted else `Ok

let recharge t =
  t.voltage <- t.v_charge;
  t.cycles <- t.cycles + 1
