(* Tests for the extension experiments (shapes) and cross-cutting
   invariant properties: data-structure transparency, the marker
   ablation, and transactional conservation under crash injection. *)

open Wsp_sim
open Wsp_nvheap
open Wsp_store
open Wsp_experiments

let structures_tests =
  [
    Alcotest.test_case "FoC is slower than WSP for every structure" `Slow
      (fun () ->
        List.iter
          (fun (r : Structures.row) ->
            Alcotest.(check bool)
              (Workload.structure_name r.Structures.structure)
              true
              (r.Structures.slowdown > 3.0))
          (Structures.data ~entries:1000 ~ops:4000 ()));
    Alcotest.test_case "structure benchmark preserves entry counts" `Quick
      (fun () ->
        List.iter
          (fun structure ->
            let r =
              Workload.run_structure_benchmark ~entries:500 ~ops:2000
                ~heap_size:(Units.Size.mib 16) ~structure
                ~config:Config.fof ~update_prob:1.0 ~seed:8 ()
            in
            Alcotest.(check bool)
              (Workload.structure_name structure ^ " count sane")
              true
              (abs (r.Workload.final_count - 500) < 200))
          Workload.structures);
  ]

let marker_ablation_tests =
  [
    Alcotest.test_case "marker off turns detected loss into silent corruption"
      `Slow (fun () ->
        match Ablation.marker_data () with
        | [ with_marker; without_marker ] ->
            Alcotest.(check bool) "on: detected" false
              with_marker.Ablation.claimed_recovery;
            Alcotest.(check bool) "off: claimed" true
              without_marker.Ablation.claimed_recovery;
            Alcotest.(check bool) "off: corrupt" false
              without_marker.Ablation.data_correct
        | _ -> Alcotest.fail "expected two rows");
    Alcotest.test_case "only the ACPI strategy blows the save path" `Slow
      (fun () ->
        List.iter
          (fun (r : Ablation.strategy_row) ->
            match r.Ablation.strategy with
            | Wsp_core.System.Acpi_save ->
                Alcotest.(check bool) "acpi fails" false r.Ablation.survived
            | Wsp_core.System.Restore_reinit
            | Wsp_core.System.Virtualized_replay ->
                Alcotest.(check bool) "survives" true r.Ablation.survived)
          (Ablation.strategy_data ()));
  ]

(* Conservation under crash: random transfers between accounts in a
   FoC+UL B-tree; crash at a random point (with a random subset of lines
   flushed by cache pressure); after recovery the total balance must be
   exactly [accounts * initial] — a committed-atomicity property across
   multi-key transactions. *)
let conservation_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"bank conservation under crash injection"
       ~count:25
       QCheck2.Gen.(
         pair small_int
           (list_size (int_range 1 25) (triple (int_range 0 19) (int_range 0 19) (int_range 1 50))))
       (fun (flush_seed, transfers) ->
         let accounts = 20 in
         let initial = 100L in
         let heap =
           Pheap.create ~config:Config.foc_ul ~size:(Units.Size.mib 8)
             ~log_size:(Units.Size.mib 1) ()
         in
         let bank = Pheap.with_tx heap (fun () -> Btree.create heap) in
         for i = 0 to accounts - 1 do
           Pheap.with_tx heap (fun () ->
               Btree.insert bank ~key:(Int64.of_int i) ~value:initial)
         done;
         let flush_rng = Rng.create ~seed:flush_seed in
         (* Run all but the last transfer committed; leave the last one
            open at the crash. *)
         let rec apply = function
           | [] -> ()
           | [ (a, _b, amt) ] ->
               Pheap.begin_tx heap;
               (match Btree.find bank (Int64.of_int a) with
               | Some bal ->
                   Btree.insert bank ~key:(Int64.of_int a)
                     ~value:(Int64.sub bal (Int64.of_int amt));
                   (* Crash strikes between the debit and the credit —
                      the worst possible instant. *)
                   ()
               | None -> ())
           | (a, b, amt) :: rest ->
               Pheap.with_tx heap (fun () ->
                   match
                     (Btree.find bank (Int64.of_int a), Btree.find bank (Int64.of_int b))
                   with
                   | Some ba, Some bb when a <> b ->
                       Btree.insert bank ~key:(Int64.of_int a)
                         ~value:(Int64.sub ba (Int64.of_int amt));
                       Btree.insert bank ~key:(Int64.of_int b)
                         ~value:(Int64.add bb (Int64.of_int amt))
                   | _ -> ());
               (* Random cache pressure: flush a few arbitrary lines so
                  the persistent image is a torn mix. *)
               if Rng.bool flush_rng then
                 Nvram.clflush (Pheap.nvram heap)
                   ~addr:(Rng.int flush_rng (Units.Size.mib 7));
               apply rest
         in
         apply transfers;
         Pheap.crash heap;
         Pheap.recover heap;
         let bank = Btree.attach heap in
         let total =
           List.fold_left
             (fun acc (_, v) -> Int64.add acc v)
             0L (Btree.to_list bank)
         in
         Btree.check bank = Ok ()
         && Int64.equal total (Int64.mul (Int64.of_int accounts) initial)))

let extension_shape_tests =
  [
    Alcotest.test_case "scm: slowdown grows as writes slow" `Slow (fun () ->
        let rows = Scm.data ~entries:1000 ~ops:4000 () in
        let find name =
          List.find
            (fun (r : Scm.row) -> r.Scm.profile.Wsp_machine.Scm.name = name)
            rows
        in
        let dram = find "DRAM" and pcm10 = find "PCM (writes 10x)" in
        let pcm100 = find "PCM (writes 100x)" in
        Alcotest.(check bool) "ordering" true
          (dram.Scm.slowdown < pcm10.Scm.slowdown
          && pcm10.Scm.slowdown < pcm100.Scm.slowdown);
        (* FoF itself barely changes: runtime cost is cache-bound. *)
        Alcotest.(check bool) "fof stable" true
          (Time.to_ns pcm100.Scm.fof /. Time.to_ns dram.Scm.fof < 1.5));
    Alcotest.test_case "models: block-based is the worst update path" `Slow
      (fun () ->
        let rows = Models.data ~entries:1000 ~ops:4000 () in
        match rows with
        | block :: rest ->
            List.iter
              (fun (r : Models.row) ->
                Alcotest.(check bool) "block slowest" true
                  Time.(block.Models.per_op_update > r.Models.per_op_update))
              rest;
            Alcotest.(check bool) "state duplicated" true
              (block.Models.footprint_factor > 1.5)
        | [] -> Alcotest.fail "no rows");
    Alcotest.test_case "distributed: catch-up until retention, then full"
      `Slow (fun () ->
        let rows = Distributed.data ~keys:5000 ~log_retention:4000 () in
        List.iter
          (fun (r : Distributed.row) ->
            let expected_full = r.Distributed.missed_updates > 4000 in
            let is_full = r.Distributed.recovery.Wsp_cluster.Replicated_kv.mode = `Full_transfer in
            Alcotest.(check bool)
              (Printf.sprintf "%d missed" r.Distributed.missed_updates)
              expected_full is_full)
          rows);
    Alcotest.test_case "wear: leveling monotonically improves lifetime" `Slow
      (fun () ->
        match Wear.data ~lines:256 ~writes:500_000 () with
        | [ none; psi1000; psi100; psi10 ] ->
            Alcotest.(check bool) "none worst" true
              (none.Wear.lifetime_fraction <= psi1000.Wear.lifetime_fraction +. 0.01);
            Alcotest.(check bool) "psi100 better" true
              (psi1000.Wear.lifetime_fraction < psi100.Wear.lifetime_fraction);
            Alcotest.(check bool) "psi10 best" true
              (psi100.Wear.lifetime_fraction < psi10.Wear.lifetime_fraction);
            Alcotest.(check bool) "overhead = 1/psi" true
              (abs_float (psi100.Wear.write_overhead -. 0.01) < 0.001)
        | _ -> Alcotest.fail "expected four rows");
    Alcotest.test_case "skew: zipfian traffic helps WSP, not FoC" `Slow
      (fun () ->
        match Skew.data ~entries:20_000 ~ops:20_000 () with
        | uniform :: _ :: [ zipf99 ] ->
            Alcotest.(check bool) "gap widens" true
              (zipf99.Skew.slowdown > uniform.Skew.slowdown);
            Alcotest.(check bool) "wsp faster under skew" true
              Time.(zipf99.Skew.fof < uniform.Skew.fof)
        | _ -> Alcotest.fail "expected three rows");
  ]

let suite =
  [
    ("experiments.structures", structures_tests);
    ("experiments.ablation", marker_ablation_tests);
    ("experiments.extensions", extension_shape_tests);
    ("invariants.conservation", [ conservation_prop ]);
  ]
