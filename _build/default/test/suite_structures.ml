(* Tests for the additional persistent data structures: skip list and
   B-tree (§7: any in-memory structure works under WSP). *)

open Wsp_sim
open Wsp_nvheap
open Wsp_store

let mk_heap () =
  Pheap.create ~size:(Units.Size.mib 8) ~log_size:(Units.Size.kib 256) ()

(* --- Skiplist -------------------------------------------------------- *)

let skiplist_tests =
  [
    Alcotest.test_case "insert, find, overwrite, delete" `Quick (fun () ->
        let sl = Skiplist.create (mk_heap ()) in
        Skiplist.insert sl ~key:10L ~value:1L;
        Skiplist.insert sl ~key:20L ~value:2L;
        Skiplist.insert sl ~key:10L ~value:3L;
        Alcotest.(check (option int64)) "overwritten" (Some 3L) (Skiplist.find sl 10L);
        Alcotest.(check int) "size" 2 (Skiplist.size sl);
        Alcotest.(check bool) "delete" true (Skiplist.delete sl 10L);
        Alcotest.(check bool) "absent delete" false (Skiplist.delete sl 10L);
        Alcotest.(check (option int64)) "gone" None (Skiplist.find sl 10L));
    Alcotest.test_case "iteration is key-ordered" `Quick (fun () ->
        let sl = Skiplist.create (mk_heap ()) in
        List.iter
          (fun k -> Skiplist.insert sl ~key:(Int64.of_int k) ~value:0L)
          [ 42; 7; 99; 1; 65 ];
        Alcotest.(check (list int64)) "sorted" [ 1L; 7L; 42L; 65L; 99L ]
          (List.map fst (Skiplist.to_list sl)));
    Alcotest.test_case "towers distribute geometrically-ish" `Quick (fun () ->
        let sl = Skiplist.create ~seed:3 (mk_heap ()) in
        for i = 1 to 2000 do
          Skiplist.insert sl ~key:(Int64.of_int i) ~value:0L
        done;
        let tall = ref 0 in
        for i = 1 to 2000 do
          match Skiplist.level_of sl (Int64.of_int i) with
          | Some l when l >= 2 -> incr tall
          | _ -> ()
        done;
        (* About half the nodes should have height >= 2. *)
        Alcotest.(check bool) "roughly half tall" true
          (!tall > 800 && !tall < 1200);
        Alcotest.(check bool) "invariants" true (Skiplist.check sl = Ok ()));
    Alcotest.test_case "survives a WSP cycle" `Quick (fun () ->
        let heap = mk_heap () in
        let sl = Skiplist.create heap in
        for i = 1 to 200 do
          Skiplist.insert sl ~key:(Int64.of_int i) ~value:(Int64.of_int (-i))
        done;
        Pheap.wsp_flush heap;
        Pheap.crash heap;
        Pheap.recover heap;
        let sl' = Skiplist.attach heap in
        Alcotest.(check int) "size" 200 (Skiplist.size sl');
        Alcotest.(check (option int64)) "value" (Some (-77L)) (Skiplist.find sl' 77L);
        Alcotest.(check bool) "invariants" true (Skiplist.check sl' = Ok ()));
  ]

let skiplist_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"skiplist agrees with Map" ~count:60
         QCheck2.Gen.(
           list_size (int_range 1 250) (pair (int_range 0 2) (int_range 0 60)))
         (fun ops ->
           let module M = Map.Make (Int64) in
           let sl = Skiplist.create (mk_heap ()) in
           let model = ref M.empty in
           List.iteri
             (fun i (op, k) ->
               let key = Int64.of_int k in
               match op with
               | 0 ->
                   Skiplist.insert sl ~key ~value:(Int64.of_int i);
                   model := M.add key (Int64.of_int i) !model
               | 1 ->
                   if Skiplist.delete sl key <> M.mem key !model then
                     failwith "delete mismatch";
                   model := M.remove key !model
               | _ ->
                   if Skiplist.find sl key <> M.find_opt key !model then
                     failwith "find mismatch")
             ops;
           Skiplist.check sl = Ok () && Skiplist.to_list sl = M.bindings !model));
  ]

(* --- Btree ------------------------------------------------------------ *)

let btree_tests =
  [
    Alcotest.test_case "insert, find, overwrite, delete" `Quick (fun () ->
        let bt = Btree.create (mk_heap ()) in
        Btree.insert bt ~key:10L ~value:1L;
        Btree.insert bt ~key:20L ~value:2L;
        Btree.insert bt ~key:10L ~value:3L;
        Alcotest.(check (option int64)) "overwritten" (Some 3L) (Btree.find bt 10L);
        Alcotest.(check int) "size" 2 (Btree.size bt);
        Alcotest.(check bool) "delete" true (Btree.delete bt 20L);
        Alcotest.(check bool) "absent" false (Btree.delete bt 20L));
    Alcotest.test_case "sequential fill splits into a shallow wide tree" `Quick
      (fun () ->
        let bt = Btree.create (mk_heap ()) in
        for i = 1 to 4096 do
          Btree.insert bt ~key:(Int64.of_int i) ~value:0L
        done;
        Alcotest.(check int) "size" 4096 (Btree.size bt);
        (* Degree-4 B-tree: height <= log_4(4096) + slack. *)
        Alcotest.(check bool) "shallow" true (Btree.height bt <= 7);
        Alcotest.(check bool) "invariants" true (Btree.check bt = Ok ()));
    Alcotest.test_case "drain to empty in both key orders" `Quick (fun () ->
        List.iter
          (fun ascending ->
            let bt = Btree.create (mk_heap ()) in
            for i = 1 to 512 do
              Btree.insert bt ~key:(Int64.of_int i) ~value:0L
            done;
            let order =
              if ascending then List.init 512 (fun i -> i + 1)
              else List.init 512 (fun i -> 512 - i)
            in
            List.iter
              (fun i ->
                Alcotest.(check bool) "removed" true
                  (Btree.delete bt (Int64.of_int i)))
              order;
            Alcotest.(check int) "empty" 0 (Btree.size bt);
            Alcotest.(check bool) "invariants" true (Btree.check bt = Ok ()))
          [ true; false ]);
    Alcotest.test_case "iteration is key-ordered" `Quick (fun () ->
        let bt = Btree.create (mk_heap ()) in
        List.iter
          (fun k -> Btree.insert bt ~key:(Int64.of_int k) ~value:0L)
          [ 42; 7; 99; 1; 65 ];
        Alcotest.(check (list int64)) "sorted" [ 1L; 7L; 42L; 65L; 99L ]
          (List.map fst (Btree.to_list bt)));
    Alcotest.test_case "survives a WSP cycle" `Quick (fun () ->
        let heap = mk_heap () in
        let bt = Btree.create heap in
        for i = 1 to 500 do
          Btree.insert bt ~key:(Int64.of_int i) ~value:(Int64.of_int (i * i))
        done;
        Pheap.wsp_flush heap;
        Pheap.crash heap;
        Pheap.recover heap;
        let bt' = Btree.attach heap in
        Alcotest.(check int) "size" 500 (Btree.size bt');
        Alcotest.(check (option int64)) "value" (Some 400L) (Btree.find bt' 20L);
        Alcotest.(check bool) "invariants" true (Btree.check bt' = Ok ()));
    Alcotest.test_case "delete frees merged nodes back to the allocator"
      `Quick (fun () ->
        let heap = mk_heap () in
        let bt = Btree.create heap in
        for i = 1 to 1000 do
          Btree.insert bt ~key:(Int64.of_int i) ~value:0L
        done;
        let before = Alloc.allocated_bytes (Pheap.allocator heap) in
        for i = 1 to 1000 do
          ignore (Btree.delete bt (Int64.of_int i))
        done;
        Alcotest.(check bool) "shrunk" true
          (Alloc.allocated_bytes (Pheap.allocator heap) < before / 2));
  ]

let btree_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"btree agrees with Map" ~count:60
         QCheck2.Gen.(
           list_size (int_range 1 250) (pair (int_range 0 2) (int_range 0 60)))
         (fun ops ->
           let module M = Map.Make (Int64) in
           let bt = Btree.create (mk_heap ()) in
           let model = ref M.empty in
           List.iteri
             (fun i (op, k) ->
               let key = Int64.of_int k in
               match op with
               | 0 ->
                   Btree.insert bt ~key ~value:(Int64.of_int i);
                   model := M.add key (Int64.of_int i) !model
               | 1 ->
                   if Btree.delete bt key <> M.mem key !model then
                     failwith "delete mismatch";
                   model := M.remove key !model
               | _ ->
                   if Btree.find bt key <> M.find_opt key !model then
                     failwith "find mismatch")
             ops;
           Btree.check bt = Ok () && Btree.to_list bt = M.bindings !model));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"btree under transactional aborts rolls back exactly" ~count:40
         QCheck2.Gen.(list_size (int_range 1 40) (int_range 0 100))
         (fun keys ->
           let heap =
             Pheap.create ~config:Config.foc_ul ~size:(Units.Size.mib 8)
               ~log_size:(Units.Size.mib 1) ()
           in
           let bt = Pheap.with_tx heap (fun () -> Btree.create heap) in
           Pheap.with_tx heap (fun () ->
               List.iter
                 (fun k -> Btree.insert bt ~key:(Int64.of_int k) ~value:1L)
                 keys);
           let snapshot = Btree.to_list bt in
           (* A doomed transaction touching many nodes... *)
           (try
              Pheap.with_tx heap (fun () ->
                  List.iter
                    (fun k ->
                      ignore (Btree.delete bt (Int64.of_int k));
                      Btree.insert bt ~key:(Int64.of_int (k + 1000)) ~value:2L)
                    keys;
                  failwith "abort")
            with Failure _ -> ());
           (* ...must leave no trace, through splits, merges and frees. *)
           Btree.to_list bt = snapshot && Btree.check bt = Ok ()));
  ]

let suite =
  [
    ("store.skiplist", skiplist_tests @ skiplist_props);
    ("store.btree", btree_tests @ btree_props);
  ]
