(* Tests for wsp_power: PSU, ultracapacitors, oscilloscope, monitor. *)

open Wsp_sim
open Wsp_power

let check_time = Alcotest.testable Time.pp Time.equal

let mk_psu ?(spec = Psu.atx_1050) ?(load = 350.0) () =
  let engine = Engine.create () in
  (engine, Psu.create ~engine ~spec ~load)

(* --- Psu -------------------------------------------------------------- *)

let psu_tests =
  [
    Alcotest.test_case "window is energy-limited under heavy load" `Quick
      (fun () ->
        let _, psu = mk_psu ~spec:Psu.atx_400 ~load:150.0 () in
        (* 51.9 J / 150 W = 346 ms < 392 ms cutoff. *)
        Alcotest.check check_time "346ms" (Time.ms 346.0) (Psu.nominal_window psu));
    Alcotest.test_case "window is cutoff-limited under light load" `Quick
      (fun () ->
        let _, psu = mk_psu ~spec:Psu.atx_400 ~load:60.0 () in
        Alcotest.check check_time "392ms cutoff" (Time.ms 392.0)
          (Psu.nominal_window psu));
    Alcotest.test_case "window shrinks with load" `Quick (fun () ->
        let _, heavy = mk_psu ~spec:Psu.atx_525 ~load:150.0 () in
        let _, light = mk_psu ~spec:Psu.atx_525 ~load:60.0 () in
        Alcotest.(check bool) "monotone" true
          Time.(Psu.nominal_window heavy < Psu.nominal_window light));
    Alcotest.test_case "rails nominal until window closes, then decay" `Quick
      (fun () ->
        let engine, psu = mk_psu () in
        Engine.run_until engine (Time.ms 1.0);
        Psu.fail_input psu ();
        let fail_at = Engine.now engine in
        let w = Psu.nominal_window psu in
        let before = Time.add fail_at (Time.scale w 0.9) in
        let after = Time.add fail_at (Time.add w (Time.ms 10.0)) in
        Alcotest.(check (float 1e-9)) "12V holds" 12.0
          (Psu.rail_voltage psu Psu.V12 ~at:before);
        Alcotest.(check bool) "12V decays" true
          (Psu.rail_voltage psu Psu.V12 ~at:after < 12.0);
        Alcotest.(check bool) "powered before" true (Psu.powered psu ~at:before);
        Alcotest.(check bool) "dead after" false (Psu.powered psu ~at:after));
    Alcotest.test_case "PWR_OK drops at the failure instant" `Quick (fun () ->
        let engine, psu = mk_psu () in
        Engine.run_until engine (Time.ms 2.0);
        Psu.fail_input psu ();
        Alcotest.(check bool) "ok before" true (Psu.pwr_ok psu ~at:(Time.ms 1.0));
        Alcotest.(check bool) "down after" false (Psu.pwr_ok psu ~at:(Time.ms 3.0)));
    Alcotest.test_case "callbacks fire in order" `Quick (fun () ->
        let engine, psu = mk_psu () in
        let log = ref [] in
        Psu.on_pwr_ok_drop psu (fun e -> log := ("pwr_ok", Engine.now e) :: !log);
        Psu.on_output_lost psu (fun e -> log := ("lost", Engine.now e) :: !log);
        Psu.fail_input psu ();
        Engine.run engine;
        match List.rev !log with
        | [ ("pwr_ok", t1); ("lost", t2) ] ->
            Alcotest.check check_time "pwr_ok now" Time.zero t1;
            Alcotest.check check_time "lost after window" (Psu.nominal_window psu) t2
        | _ -> Alcotest.fail "wrong callback sequence");
    Alcotest.test_case "double failure rejected" `Quick (fun () ->
        let _, psu = mk_psu () in
        Psu.fail_input psu ();
        Alcotest.(check bool) "raises" true
          (try
             Psu.fail_input psu ();
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "figure 7 calibration points" `Quick (fun () ->
        let window spec load =
          let _, psu = mk_psu ~spec ~load () in
          Time.to_ms (Psu.nominal_window psu)
        in
        (* Paper: 400W 346/392; 525W 22/71 (we land 28/71); 750W 10/10;
           1050W 33/33. Within 30% everywhere. *)
        let close a b = abs_float (a -. b) /. b < 0.30 in
        Alcotest.(check bool) "400 busy" true (close (window Psu.atx_400 150.0) 346.0);
        Alcotest.(check bool) "400 idle" true (close (window Psu.atx_400 60.0) 392.0);
        Alcotest.(check bool) "525 busy" true (close (window Psu.atx_525 150.0) 22.0);
        Alcotest.(check bool) "525 idle" true (close (window Psu.atx_525 60.0) 71.0);
        Alcotest.(check bool) "750 busy" true (close (window Psu.atx_750 350.0) 10.0);
        Alcotest.(check bool) "750 idle" true (close (window Psu.atx_750 150.0) 10.0);
        Alcotest.(check bool) "1050 busy" true (close (window Psu.atx_1050 350.0) 33.0);
        Alcotest.(check bool) "1050 idle" true (close (window Psu.atx_1050 150.0) 33.0));
  ]

(* --- Ultracap ------------------------------------------------------------ *)

let ultracap_tests =
  [
    Alcotest.test_case "usable energy excludes the sub-minimum band" `Quick
      (fun () ->
        let cap = Ultracap.create ~capacitance:5.0 ~v_charge:8.5 () in
        (* 0.5*5*(8.5^2 - 6^2) = 90.625 J. *)
        Alcotest.(check (float 1e-3)) "energy" 90.625
          (Ultracap.usable_energy cap ~band:Ultracap.Datasheet));
    Alcotest.test_case "discharge tracks voltage and exhausts" `Quick (fun () ->
        let cap = Ultracap.create ~capacitance:5.0 ~v_charge:8.5 () in
        (match Ultracap.discharge cap ~power:4.5 ~during:(Time.s 8.5) with
        | `Ok -> ()
        | `Exhausted -> Alcotest.fail "should survive the save");
        Alcotest.(check bool) "voltage dropped" true (Ultracap.voltage cap < 8.5);
        (match Ultracap.discharge cap ~power:4.5 ~during:(Time.s 60.0) with
        | `Exhausted -> ()
        | `Ok -> Alcotest.fail "should exhaust");
        Alcotest.(check bool) "under v_min" true (Ultracap.voltage cap < 6.0));
    Alcotest.test_case "supply duration consistent with can_supply" `Quick
      (fun () ->
        let cap = Ultracap.create ~capacitance:5.0 ~v_charge:8.5 () in
        let d = Ultracap.supply_duration cap ~band:Ultracap.Datasheet ~power:4.5 in
        Alcotest.(check bool) "can supply for d" true
          (Ultracap.can_supply cap ~band:Ultracap.Datasheet ~power:4.5 ~lasting:d);
        Alcotest.(check bool) "cannot exceed d" false
          (Ultracap.can_supply cap ~band:Ultracap.Datasheet ~power:4.5
             ~lasting:(Time.add d (Time.s 1.0))));
    Alcotest.test_case "recharge counts cycles and restores voltage" `Quick
      (fun () ->
        let cap = Ultracap.create ~capacitance:5.0 ~v_charge:8.5 () in
        ignore (Ultracap.discharge cap ~power:4.5 ~during:(Time.s 5.0));
        Ultracap.recharge cap;
        Alcotest.(check (float 1e-9)) "full" 8.5 (Ultracap.voltage cap);
        Alcotest.(check int) "one cycle" 1 (Ultracap.cycles cap));
    Alcotest.test_case "figure 1 endpoints" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "fresh" 1.0
          (Ultracap.capacitance_fraction ~cycles:0 ~band:Ultracap.Worst);
        Alcotest.(check (float 1e-9)) "worst at 100k" 0.90
          (Ultracap.capacitance_fraction ~cycles:100_000 ~band:Ultracap.Worst);
        Alcotest.(check (float 1e-9)) "best at 100k" 0.98
          (Ultracap.capacitance_fraction ~cycles:100_000 ~band:Ultracap.Best);
        Alcotest.(check bool) "battery collapses by 500" true
          (Ultracap.battery_capacity_fraction ~cycles:500 < 0.4));
    Alcotest.test_case "degradation is monotone in cycles" `Quick (fun () ->
        let rec check prev cycles =
          if cycles <= 100_000 then begin
            let f = Ultracap.capacitance_fraction ~cycles ~band:Ultracap.Worst in
            Alcotest.(check bool) "non-increasing" true (f <= prev +. 1e-12);
            check f (cycles + 10_000)
          end
        in
        check 1.0 0);
  ]

(* --- Oscilloscope ----------------------------------------------------------- *)

let oscilloscope_tests =
  [
    Alcotest.test_case "measures the window within half a millisecond" `Quick
      (fun () ->
        let engine = Engine.create () in
        let psu = Psu.create ~engine ~spec:Psu.atx_1050 ~load:350.0 in
        let scope = Oscilloscope.create ~rng:(Rng.create ~seed:1) psu in
        Engine.run_until engine (Time.ms 5.0);
        let fail_at = Engine.now engine in
        Psu.fail_input psu ();
        Engine.run_until engine (Time.ms 150.0);
        match Oscilloscope.measure_window scope ~fail_at ~until:(Time.ms 150.0) with
        | Some w ->
            let err = abs_float (Time.to_ms w -. 33.0) in
            Alcotest.(check bool) "within 1.5 ms of 33" true (err < 1.5)
        | None -> Alcotest.fail "no window measured");
    Alcotest.test_case "noise alone does not trigger the rule" `Quick (fun () ->
        let engine = Engine.create () in
        let psu = Psu.create ~engine ~spec:Psu.atx_1050 ~load:350.0 in
        let scope = Oscilloscope.create ~rng:(Rng.create ~seed:2) psu in
        Engine.run_until engine (Time.ms 50.0);
        (* No failure injected: a healthy PSU must never read as dropped. *)
        let traces =
          Oscilloscope.capture scope ~from:Time.zero ~until:(Time.ms 50.0)
            ~rails:Psu.all_rails
        in
        List.iter
          (fun trace ->
            if Trace.name trace <> "PWR_OK" then
              Alcotest.(check bool)
                (Trace.name trace ^ " stays up")
                true
                (Trace.first_crossing_below trace ~threshold:(0.95 *. 3.3)
                   ~hold:(Time.us 250.0)
                = None))
          traces);
    Alcotest.test_case "capture covers all rails plus PWR_OK" `Quick (fun () ->
        let engine = Engine.create () in
        let psu = Psu.create ~engine ~spec:Psu.atx_750 ~load:150.0 in
        let scope = Oscilloscope.create ~rng:(Rng.create ~seed:3) psu in
        let traces =
          Oscilloscope.capture scope ~from:Time.zero ~until:(Time.ms 1.0)
            ~rails:Psu.all_rails
        in
        Alcotest.(check int) "four traces" 4 (List.length traces);
        List.iter
          (fun t -> Alcotest.(check int) "101 samples" 101 (Trace.length t))
          traces);
  ]

(* --- Power monitor -------------------------------------------------------- *)

let monitor_tests =
  [
    Alcotest.test_case "raises the host interrupt after its latencies" `Quick
      (fun () ->
        let engine = Engine.create () in
        let psu = Psu.create ~engine ~spec:Psu.atx_1050 ~load:350.0 in
        let monitor = Power_monitor.create ~engine ~psu () in
        let fired = ref None in
        Power_monitor.on_power_fail monitor (fun e -> fired := Some (Engine.now e));
        Engine.run_until engine (Time.ms 1.0);
        Psu.fail_input psu ();
        Engine.run engine;
        (match !fired with
        | Some at ->
            Alcotest.check check_time "1ms + 100us" (Time.us 1100.0) at
        | None -> Alcotest.fail "interrupt never fired");
        Alcotest.(check bool) "triggered" true (Power_monitor.triggered monitor));
    Alcotest.test_case "i2c commands are serialised after the latency" `Quick
      (fun () ->
        let engine = Engine.create () in
        let psu = Psu.create ~engine ~spec:Psu.atx_1050 ~load:350.0 in
        let monitor = Power_monitor.create ~engine ~psu () in
        let at = ref Time.zero in
        Power_monitor.send_i2c monitor (fun e -> at := Engine.now e);
        Engine.run engine;
        Alcotest.check check_time "i2c latency" (Power_monitor.i2c_latency monitor) !at);
  ]

let suite =
  [
    ("power.psu", psu_tests);
    ("power.ultracap", ultracap_tests);
    ("power.oscilloscope", oscilloscope_tests);
    ("power.monitor", monitor_tests);
  ]
