test/suite_structures.ml: Alcotest Alloc Btree Config Int64 List Map Pheap QCheck2 QCheck_alcotest Skiplist Units Wsp_nvheap Wsp_sim Wsp_store
