test/suite_cluster.ml: Alcotest Int64 List QCheck2 QCheck_alcotest Recovery_storm Replicated_kv Replication Time Units Wsp_cluster Wsp_sim
