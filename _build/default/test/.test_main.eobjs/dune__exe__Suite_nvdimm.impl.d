test/suite_nvdimm.ml: Alcotest Array Bytes Char Engine Time Trace Units Wsp_nvdimm Wsp_power Wsp_sim
