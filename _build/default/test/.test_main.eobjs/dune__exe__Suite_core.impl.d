test/suite_core.ml: Acpi Alcotest Array Device Engine Int64 List Nvram Pheap Platform Printf QCheck2 QCheck_alcotest Rng System Time Wsp_core Wsp_machine Wsp_nvdimm Wsp_nvheap Wsp_power Wsp_sim
