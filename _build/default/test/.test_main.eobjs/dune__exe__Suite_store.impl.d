test/suite_store.ml: Alcotest Alloc Avl Config Directory Hash_table Hashtbl Int64 List Map Pheap QCheck2 QCheck_alcotest Rng Time Units Workload Wsp_nvheap Wsp_sim Wsp_store
