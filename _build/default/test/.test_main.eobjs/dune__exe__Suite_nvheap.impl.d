test/suite_nvheap.ml: Alcotest Alloc Array Bytes Config Hashtbl Int64 List Nvram Pheap Printf QCheck2 QCheck_alcotest Rawlog Time Txn Units Wsp_nvheap Wsp_sim
