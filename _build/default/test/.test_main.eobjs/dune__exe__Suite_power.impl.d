test/suite_power.ml: Alcotest Engine List Oscilloscope Power_monitor Psu Rng Time Trace Ultracap Wsp_power Wsp_sim
