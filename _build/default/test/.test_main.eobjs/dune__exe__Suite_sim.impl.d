test/suite_sim.ml: Alcotest Array Engine Event_queue Int64 List QCheck2 QCheck_alcotest Rng Stats Time Trace Units Wsp_sim
