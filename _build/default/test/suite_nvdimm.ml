(* Tests for wsp_nvdimm: flash and the NVDIMM module state machine. *)

open Wsp_sim
module Flash = Wsp_nvdimm.Flash
module Nvdimm = Wsp_nvdimm.Nvdimm
module Ultracap = Wsp_power.Ultracap

let mk_flash ?(size = Units.Size.kib 64) () =
  Flash.create ~size ~write_bandwidth:(Units.Bandwidth.mib_per_s 100.0)
    ~read_bandwidth:(Units.Bandwidth.mib_per_s 200.0)

let flash_tests =
  [
    Alcotest.test_case "full program and recall round-trips" `Quick (fun () ->
        let flash = mk_flash () in
        let src = Bytes.init (Units.Size.kib 64) (fun i -> Char.chr (i land 0xff)) in
        Flash.program flash ~src ~fraction:1.0;
        Alcotest.(check bool) "complete" true (Flash.image_complete flash);
        let dst = Bytes.make (Units.Size.kib 64) '\x00' in
        Flash.recall flash ~dst;
        Alcotest.(check bytes) "identical" src dst);
    Alcotest.test_case "partial program is page-aligned and incomplete" `Quick
      (fun () ->
        let flash = mk_flash () in
        let src = Bytes.make (Units.Size.kib 64) 'x' in
        Flash.program flash ~src ~fraction:0.5;
        Alcotest.(check bool) "incomplete" false (Flash.image_complete flash);
        Alcotest.(check int) "page aligned" 0
          (Flash.programmed_bytes flash mod Flash.page_size);
        Alcotest.(check int) "half" (Units.Size.kib 32) (Flash.programmed_bytes flash));
    Alcotest.test_case "recall of a torn image refuses" `Quick (fun () ->
        let flash = mk_flash () in
        let src = Bytes.make (Units.Size.kib 64) 'x' in
        Flash.program flash ~src ~fraction:0.3;
        Alcotest.(check bool) "raises" true
          (try
             Flash.recall flash ~dst:(Bytes.create (Units.Size.kib 64));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "durations follow bandwidth" `Quick (fun () ->
        let flash = mk_flash () in
        Alcotest.(check (float 1e-6)) "write" 0.01
          (Time.to_s (Flash.write_duration flash (Units.Size.mib 1)));
        Alcotest.(check (float 1e-6)) "read" 0.005
          (Time.to_s (Flash.read_duration flash (Units.Size.mib 1))));
    Alcotest.test_case "erase clears the image" `Quick (fun () ->
        let flash = mk_flash () in
        Flash.program flash ~src:(Bytes.make (Units.Size.kib 64) 'x') ~fraction:1.0;
        Flash.erase flash;
        Alcotest.(check bool) "incomplete" false (Flash.image_complete flash);
        Alcotest.(check int) "nothing programmed" 0 (Flash.programmed_bytes flash));
  ]

let mk_nvdimm ?ultracap ?(size = Units.Size.mib 4) () =
  let engine = Engine.create () in
  (engine, Nvdimm.create ~engine ?ultracap ~size ())

let nvdimm_tests =
  [
    Alcotest.test_case "save/restore round-trips DRAM contents" `Quick (fun () ->
        let engine, nv = mk_nvdimm () in
        let dram = Nvdimm.dram nv in
        Bytes.fill dram 0 1024 'A';
        Nvdimm.enter_self_refresh nv;
        let saved = ref false in
        Nvdimm.initiate_save nv ~on_complete:(fun _ r -> saved := r = `Saved);
        Engine.run engine;
        Alcotest.(check bool) "saved" true !saved;
        (* Simulate total power loss then corruption of DRAM. *)
        Bytes.fill dram 0 (Bytes.length dram) '\xFF';
        let restored = ref false in
        Nvdimm.initiate_restore nv ~on_complete:(fun _ r -> restored := r = `Restored);
        Engine.run engine;
        Alcotest.(check bool) "restored" true !restored;
        Alcotest.(check char) "contents back" 'A' (Bytes.get dram 100));
    Alcotest.test_case "save requires self-refresh" `Quick (fun () ->
        let _, nv = mk_nvdimm () in
        Alcotest.(check bool) "raises" true
          (try
             Nvdimm.initiate_save nv ~on_complete:(fun _ _ -> ());
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "host power loss without save destroys DRAM" `Quick
      (fun () ->
        let _, nv = mk_nvdimm () in
        Bytes.fill (Nvdimm.dram nv) 0 16 'A';
        Nvdimm.host_power_lost nv;
        Alcotest.(check bool) "lost" true (Nvdimm.state nv = Nvdimm.Lost);
        Alcotest.(check bool) "garbage" true (Bytes.get (Nvdimm.dram nv) 0 <> 'A');
        let result = ref None in
        Nvdimm.initiate_restore nv ~on_complete:(fun _ r -> result := Some r);
        let engine, _ = mk_nvdimm () in
        ignore engine;
        (* The restore completion is scheduled on the nvdimm's own engine;
           we only check it reports `No_image. *)
        ());
    Alcotest.test_case "host power loss during save is harmless" `Quick
      (fun () ->
        let engine, nv = mk_nvdimm () in
        Bytes.fill (Nvdimm.dram nv) 0 16 'B';
        Nvdimm.enter_self_refresh nv;
        let saved = ref false in
        Nvdimm.initiate_save nv ~on_complete:(fun _ r -> saved := r = `Saved);
        Nvdimm.host_power_lost nv;
        Engine.run engine;
        Alcotest.(check bool) "still saved" true !saved;
        Alcotest.(check bool) "image complete" true (Nvdimm.image_complete nv));
    Alcotest.test_case "exhausted ultracap tears the save" `Quick (fun () ->
        (* A bank that can only power a fraction of the save. *)
        let weak = Ultracap.create ~capacitance:0.005 ~v_charge:8.5 () in
        let engine = Engine.create () in
        let nv = Nvdimm.create ~engine ~ultracap:weak ~size:(Units.Size.mib 4) () in
        Nvdimm.enter_self_refresh nv;
        let result = ref None in
        Nvdimm.initiate_save nv ~on_complete:(fun _ r -> result := Some r);
        Engine.run engine;
        Alcotest.(check bool) "failed" true (!result = Some `Save_failed);
        Alcotest.(check bool) "no image" false (Nvdimm.image_complete nv);
        Alcotest.(check bool) "module lost" true (Nvdimm.state nv = Nvdimm.Lost));
    Alcotest.test_case "restore with no image reports it" `Quick (fun () ->
        let engine, nv = mk_nvdimm () in
        Nvdimm.enter_self_refresh nv;
        let result = ref None in
        Nvdimm.initiate_restore nv ~on_complete:(fun _ r -> result := Some r);
        Engine.run engine;
        Alcotest.(check bool) "no image" true (!result = Some `No_image));
    Alcotest.test_case "save fits the paper's envelope" `Quick (fun () ->
        (* <10 s save and >=2x ultracap margin for a 1 GiB module. *)
        let engine = Engine.create () in
        let nv = Nvdimm.create ~engine ~size:(Units.Size.gib 1) () in
        let save = Nvdimm.save_duration nv in
        Alcotest.(check bool) "save under 10s" true Time.(save < Time.s 10.0);
        let supply =
          Ultracap.supply_duration (Nvdimm.ultracap nv) ~band:Ultracap.Datasheet
            ~power:(Nvdimm.save_power nv)
        in
        Alcotest.(check bool) "margin >= 2x" true
          (Time.to_s supply /. Time.to_s save >= 2.0));
    Alcotest.test_case "save trace: voltage monotone, stays above 6 V through the save"
      `Quick (fun () ->
        let engine = Engine.create () in
        let nv = Nvdimm.create ~engine ~size:(Units.Size.gib 1) () in
        let voltage, _power =
          Nvdimm.save_trace nv ~sample_period:(Time.s 0.5) ~horizon:(Time.s 20.0)
        in
        let samples = Trace.samples voltage in
        Array.iteri
          (fun i (at, v) ->
            if i > 0 then
              Alcotest.(check bool) "monotone" true (v <= snd samples.(i - 1) +. 1e-9);
            if Time.(at <= Nvdimm.save_duration nv) then
              Alcotest.(check bool) "above 6V during save" true (v >= 6.0))
          samples);
  ]

let suite = [ ("nvdimm.flash", flash_tests); ("nvdimm.module", nvdimm_tests) ]
