(* Tests for the extension subsystems: block-based persistence, SCM
   profiles, NVDIMM arrays, hibernation, process persistence, back-end
   checkpoints, and the crash-safety sweep. *)

open Wsp_sim
open Wsp_machine
open Wsp_nvheap
open Wsp_store
open Wsp_core
module Nvdimm = Wsp_nvdimm.Nvdimm
module Nvdimm_array = Wsp_nvdimm.Nvdimm_array

let check_time = Alcotest.testable Time.pp Time.equal

(* --- Blockstore -------------------------------------------------------- *)

let mk_device ?(len = Units.Size.kib 64) () =
  let nvram = Nvram.create ~size:(Units.Size.kib 128) () in
  (nvram, Blockstore.create nvram ~base:0 ~len ())

let blockstore_tests =
  [
    Alcotest.test_case "block write/read round-trips" `Quick (fun () ->
        let _, dev = mk_device () in
        let block = Bytes.init 4096 (fun i -> Char.chr (i land 0xff)) in
        Blockstore.write_block dev ~idx:3 block;
        Alcotest.(check bytes) "round trip" block (Blockstore.read_block dev ~idx:3));
    Alcotest.test_case "block writes are durable without any flush" `Quick
      (fun () ->
        let nvram, dev = mk_device () in
        let block = Bytes.make 4096 'Q' in
        Blockstore.write_block dev ~idx:0 block;
        Nvram.crash nvram;
        let dev' = Blockstore.attach nvram ~base:0 ~len:(Units.Size.kib 64) () in
        Alcotest.(check bytes) "survived" block (Blockstore.read_block dev' ~idx:0));
    Alcotest.test_case "geometry and bounds" `Quick (fun () ->
        let _, dev = mk_device () in
        Alcotest.(check int) "16 blocks" 16 (Blockstore.block_count dev);
        Alcotest.(check bool) "oob raises" true
          (try
             ignore (Blockstore.read_block dev ~idx:16);
             false
           with Invalid_argument _ -> true);
        Alcotest.(check bool) "short buffer raises" true
          (try
             Blockstore.write_block dev ~idx:0 (Bytes.create 100);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "traffic accounting" `Quick (fun () ->
        let _, dev = mk_device () in
        Blockstore.write_block dev ~idx:0 (Bytes.create 4096);
        Blockstore.write_block dev ~idx:1 (Bytes.create 4096);
        Alcotest.(check int) "blocks" 2 (Blockstore.blocks_written dev);
        Alcotest.(check int) "bytes" 8192 (Blockstore.bytes_written dev));
    Alcotest.test_case "block writes cost syscall + transfer time" `Quick
      (fun () ->
        let nvram, dev = mk_device () in
        Nvram.reset_clock nvram;
        Blockstore.write_block dev ~idx:0 (Bytes.create 4096);
        (* At least the 300 ns syscall plus 512 NT stores. *)
        Alcotest.(check bool) "over 1 us" true
          Time.(Nvram.clock nvram > Time.us 1.0));
  ]

(* --- Block_kv ----------------------------------------------------------- *)

let mk_block_kv () =
  let nvram = Nvram.create ~size:(Units.Size.mib 4) () in
  let heap =
    Pheap.create_in ~nvram ~base:0 ~len:(Units.Size.mib 2)
      ~log_size:(Units.Size.kib 64) ()
  in
  let device =
    Blockstore.create nvram ~base:(Units.Size.mib 2) ~len:(Units.Size.mib 2) ()
  in
  (nvram, heap, device, Block_kv.create ~buckets:256 ~heap ~device ())

let block_kv_tests =
  [
    Alcotest.test_case "insert/find/delete" `Quick (fun () ->
        let _, _, _, kv = mk_block_kv () in
        Block_kv.insert kv ~key:1L ~value:10L;
        Block_kv.insert kv ~key:2L ~value:20L;
        Alcotest.(check (option int64)) "find" (Some 10L) (Block_kv.find kv 1L);
        Alcotest.(check bool) "delete" true (Block_kv.delete kv 1L);
        Alcotest.(check (option int64)) "gone" None (Block_kv.find kv 1L);
        Alcotest.(check int) "count" 1 (Block_kv.count kv);
        Alcotest.(check int) "journal records all ops" 3 (Block_kv.journal_records kv));
    Alcotest.test_case "journal replay rebuilds the table after a crash" `Quick
      (fun () ->
        let nvram, _, device, kv = mk_block_kv () in
        for i = 1 to 500 do
          Block_kv.insert kv ~key:(Int64.of_int i) ~value:(Int64.of_int (i * 2))
        done;
        for i = 1 to 100 do
          ignore (Block_kv.delete kv (Int64.of_int i))
        done;
        (* The in-memory half dies; the journal blocks are durable. *)
        Nvram.crash nvram;
        let heap' =
          Pheap.create_in ~nvram ~base:0 ~len:(Units.Size.mib 2)
            ~log_size:(Units.Size.kib 64) ()
        in
        let kv' = Block_kv.recover ~buckets:256 ~heap:heap' ~device () in
        Alcotest.(check int) "count" 400 (Block_kv.count kv');
        Alcotest.(check (option int64)) "deleted stays gone" None
          (Block_kv.find kv' 50L);
        Alcotest.(check (option int64)) "survivor" (Some 400L)
          (Block_kv.find kv' 200L);
        (* Appending after recovery lands after the replayed records. *)
        Block_kv.insert kv' ~key:9999L ~value:1L;
        Alcotest.(check int) "record count continues" 601
          (Block_kv.journal_records kv'));
    Alcotest.test_case "footprint counts both copies" `Quick (fun () ->
        let _, _, _, kv = mk_block_kv () in
        for i = 1 to 100 do
          Block_kv.insert kv ~key:(Int64.of_int i) ~value:0L
        done;
        Alcotest.(check bool) "journal bytes > 0" true (Block_kv.block_bytes kv > 0);
        Alcotest.(check bool) "memory bytes > 0" true (Block_kv.memory_bytes kv > 0));
  ]

(* --- Scm ----------------------------------------------------------------- *)

let scm_tests =
  [
    Alcotest.test_case "dram profile is the identity" `Quick (fun () ->
        let base = Platform.core_hierarchy Platform.intel_c5528 in
        let applied = Scm.apply Scm.dram base in
        Alcotest.check check_time "latency" base.Hierarchy.memory_latency
          applied.Hierarchy.memory_latency;
        Alcotest.(check (float 1e-6)) "write bw"
          base.Hierarchy.memory_write_bandwidth
          applied.Hierarchy.memory_write_bandwidth);
    Alcotest.test_case "pcm slows the write path, not the caches" `Quick
      (fun () ->
        let base = Platform.core_hierarchy Platform.intel_c5528 in
        let pcm = Scm.apply Scm.pcm_optimistic base in
        Alcotest.check check_time "read latency x2"
          (Time.scale base.Hierarchy.memory_latency 2.0)
          pcm.Hierarchy.memory_latency;
        Alcotest.(check bool) "write bw /10" true
          (abs_float
             (pcm.Hierarchy.memory_write_bandwidth
             -. (0.1 *. base.Hierarchy.memory_write_bandwidth))
          < 1.0);
        Alcotest.(check bool) "cache levels untouched" true
          (pcm.Hierarchy.levels = base.Hierarchy.levels));
    Alcotest.test_case "flush energy scales with dirty bytes and profile"
      `Quick (fun () ->
        let p = Platform.intel_c5528 in
        let e profile bytes =
          Units.Energy.to_joules (Scm.flush_energy profile ~platform:p ~dirty_bytes:bytes)
        in
        Alcotest.(check bool) "2x bytes, 2x energy" true
          (abs_float ((2.0 *. e Scm.dram 1000) -. e Scm.dram 2000) < 1e-12);
        Alcotest.(check bool) "pcm costs more" true
          (e Scm.pcm_optimistic 1000 > e Scm.dram 1000));
    Alcotest.test_case "profile lookup" `Quick (fun () ->
        Alcotest.(check bool) "dram" true (Scm.by_name "DRAM" <> None);
        Alcotest.(check bool) "unknown" true (Scm.by_name "core memory" = None));
  ]

(* --- Nvdimm_array ---------------------------------------------------------- *)

let nvdimm_array_tests =
  [
    Alcotest.test_case "bank save time equals one module's" `Quick (fun () ->
        let engine = Engine.create () in
        let bank =
          Nvdimm_array.create ~engine ~modules:4 ~total:(Units.Size.mib 16) ()
        in
        let single = Nvdimm.create ~engine ~size:(Units.Size.mib 4) () in
        Alcotest.check check_time "parallel" (Nvdimm.save_duration single)
          (Nvdimm_array.save_duration bank));
    Alcotest.test_case "save and restore fan out over all modules" `Quick
      (fun () ->
        let engine = Engine.create () in
        let bank =
          Nvdimm_array.create ~engine ~modules:3 ~total:(Units.Size.mib 12) ()
        in
        List.iteri
          (fun i m -> Bytes.fill (Nvdimm.dram m) 0 64 (Char.chr (65 + i)))
          (Nvdimm_array.modules bank);
        Nvdimm_array.enter_self_refresh bank;
        let saved = ref None in
        Nvdimm_array.initiate_save bank ~on_complete:(fun _ r -> saved := Some r);
        Engine.run engine;
        Alcotest.(check bool) "saved" true (!saved = Some `Saved);
        Alcotest.(check bool) "all images" true (Nvdimm_array.all_images_complete bank);
        (* Corrupt DRAM, restore, verify each module's contents. *)
        List.iter
          (fun m -> Bytes.fill (Nvdimm.dram m) 0 64 'z')
          (Nvdimm_array.modules bank);
        let restored = ref None in
        Nvdimm_array.initiate_restore bank ~on_complete:(fun _ r -> restored := Some r);
        Engine.run engine;
        Alcotest.(check bool) "restored" true (!restored = Some `Restored);
        List.iteri
          (fun i m ->
            Alcotest.(check char) "contents" (Char.chr (65 + i))
              (Bytes.get (Nvdimm.dram m) 10))
          (Nvdimm_array.modules bank));
    Alcotest.test_case "one torn module fails the whole bank save" `Quick
      (fun () ->
        let engine = Engine.create () in
        let weak = Wsp_power.Ultracap.create ~capacitance:0.002 ~v_charge:8.5 () in
        let ok = Nvdimm.create ~engine ~size:(Units.Size.mib 4) () in
        let bad = Nvdimm.create ~engine ~ultracap:weak ~size:(Units.Size.mib 4) () in
        (* Build a bank by hand around one weak module. *)
        ignore ok;
        ignore bad;
        Nvdimm.enter_self_refresh ok;
        Nvdimm.enter_self_refresh bad;
        let results = ref [] in
        Nvdimm.initiate_save ok ~on_complete:(fun _ r -> results := r :: !results);
        Nvdimm.initiate_save bad ~on_complete:(fun _ r -> results := r :: !results);
        Engine.run engine;
        Alcotest.(check bool) "one failure observed" true
          (List.mem `Save_failed !results));
    Alcotest.test_case "save_duration_for matches a real module" `Quick
      (fun () ->
        let engine = Engine.create () in
        let m = Nvdimm.create ~engine ~size:(Units.Size.gib 1) () in
        Alcotest.check check_time "match" (Nvdimm.save_duration m)
          (Nvdimm.save_duration_for ~size:(Units.Size.gib 1)));
  ]

(* --- Hibernate --------------------------------------------------------------- *)

let hibernate_tests =
  [
    Alcotest.test_case "hibernation scales with memory, NVDIMM save does not"
      `Quick (fun () ->
        let p = Platform.intel_c5528 in
        let c size modules =
          Hibernate.compare
            (Hibernate.default_params ~memory:size p)
            ~nvdimm_modules:modules
        in
        let small = c (Units.Size.gib 4) 2 in
        let large = c (Units.Size.gib 64) 16 in
        Alcotest.(check bool) "hibernate grows" true
          Time.(large.Hibernate.hibernate_time > small.Hibernate.hibernate_time);
        Alcotest.check check_time "nvdimm constant"
          small.Hibernate.nvdimm_save_time large.Hibernate.nvdimm_save_time);
    Alcotest.test_case "system power demand differs by orders of magnitude"
      `Quick (fun () ->
        let p = Platform.intel_c5528 in
        let c =
          Hibernate.compare
            (Hibernate.default_params ~memory:(Units.Size.gib 16) p)
            ~nvdimm_modules:4
        in
        Alcotest.(check bool) "hibernate needs seconds of power" true
          Time.(c.Hibernate.hibernate_powered > Time.s 10.0);
        Alcotest.(check bool) "wsp needs milliseconds" true
          Time.(c.Hibernate.nvdimm_powered < Time.ms 10.0));
  ]

(* --- Process persistence --------------------------------------------------- *)

let mk_process ?(encapsulation = Process.Library_os) () =
  let heap = Pheap.create ~size:(Units.Size.mib 8) () in
  let rng = Rng.create ~seed:9 in
  (heap, Process.create ~encapsulation ~heap ~threads:4 ~rng ())

let process_tests =
  [
    Alcotest.test_case "library-OS process survives a fresh kernel" `Quick
      (fun () ->
        let heap, proc = mk_process () in
        ignore (Process.open_handle proc Process.File);
        ignore (Process.open_handle proc Process.Socket);
        Process.block_thread proc ~thread:1 ~on:Process.Socket;
        Process.checkpoint proc;
        (* The WSP save/restore cycle in miniature. *)
        Pheap.wsp_flush heap;
        Pheap.crash heap;
        Pheap.recover heap;
        let r = Process.restore_on_fresh_os proc in
        Alcotest.(check bool) "restored" true (r.Process.outcome = `Restored);
        Alcotest.(check int) "one syscall aborted" 1 r.Process.syscalls_aborted;
        Alcotest.(check int) "handles recreated" 2 r.Process.handles_recreated;
        Alcotest.(check int) "none dangling" 0 r.Process.handles_dangling;
        Alcotest.(check bool) "contexts intact" true r.Process.contexts_intact;
        List.iter
          (fun s ->
            Alcotest.(check bool) "threads runnable" true (s = Process.Running_user))
          (Process.thread_states proc));
    Alcotest.test_case "direct-kernel process with handles is unrestorable"
      `Quick (fun () ->
        let heap, proc = mk_process ~encapsulation:Process.Direct_kernel () in
        ignore (Process.open_handle proc Process.Device_handle);
        Process.checkpoint proc;
        Pheap.wsp_flush heap;
        Pheap.crash heap;
        Pheap.recover heap;
        let r = Process.restore_on_fresh_os proc in
        (match r.Process.outcome with
        | `Unrestorable _ -> ()
        | `Restored -> Alcotest.fail "should not restore");
        Alcotest.(check int) "dangling" 1 r.Process.handles_dangling);
    Alcotest.test_case "direct-kernel process without handles restores" `Quick
      (fun () ->
        let _, proc = mk_process ~encapsulation:Process.Direct_kernel () in
        Process.checkpoint proc;
        let r = Process.restore_on_fresh_os proc in
        Alcotest.(check bool) "restored" true (r.Process.outcome = `Restored));
    Alcotest.test_case "restore without a checkpoint is rejected" `Quick
      (fun () ->
        let _, proc = mk_process () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Process.restore_on_fresh_os proc);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "handle churn respects the table limit" `Quick (fun () ->
        let _, proc = mk_process () in
        for _ = 1 to 64 do
          ignore (Process.open_handle proc Process.File)
        done;
        Alcotest.(check int) "64 handles" 64 (Process.handle_count proc);
        Alcotest.(check bool) "65th raises" true
          (try
             ignore (Process.open_handle proc Process.File);
             false
           with Invalid_argument _ -> true));
  ]

(* --- Checkpoint -------------------------------------------------------------- *)

let checkpoint_tests =
  [
    Alcotest.test_case "checkpoint/restore round-trips application state"
      `Quick (fun () ->
        let heap = Pheap.create ~size:(Units.Size.mib 8) () in
        let table = Hash_table.create ~buckets:256 heap in
        for i = 1 to 100 do
          Hash_table.insert table ~key:(Int64.of_int i) ~value:(Int64.of_int i)
        done;
        let backend = Checkpoint.create_backend () in
        ignore (Checkpoint.checkpoint backend ~name:"a" heap);
        (* Keep mutating, then lose everything (no WSP save). *)
        for i = 101 to 200 do
          Hash_table.insert table ~key:(Int64.of_int i) ~value:0L
        done;
        Pheap.crash heap;
        ignore (Checkpoint.restore backend ~name:"a" heap);
        Pheap.recover heap;
        let table' = Hash_table.attach heap in
        Alcotest.(check int) "checkpointed state" 100 (Hash_table.count table');
        Alcotest.(check (option int64)) "value" (Some 42L)
          (Hash_table.find table' 42L));
    Alcotest.test_case "restore survives a further crash (it is flushed)"
      `Quick (fun () ->
        let heap = Pheap.create ~size:(Units.Size.mib 8) () in
        let table = Hash_table.create ~buckets:64 heap in
        Hash_table.insert table ~key:5L ~value:6L;
        let backend = Checkpoint.create_backend () in
        ignore (Checkpoint.checkpoint backend ~name:"a" heap);
        Pheap.crash heap;
        ignore (Checkpoint.restore backend ~name:"a" heap);
        Pheap.crash heap;  (* crash again immediately *)
        Pheap.recover heap;
        let table' = Hash_table.attach heap in
        Alcotest.(check (option int64)) "still there" (Some 6L)
          (Hash_table.find table' 5L));
    Alcotest.test_case "latest tracks the newest name; costs scale with size"
      `Quick (fun () ->
        let heap = Pheap.create ~size:(Units.Size.mib 8) () in
        let backend =
          Checkpoint.create_backend ~bandwidth:(Units.Bandwidth.mib_per_s 100.0) ()
        in
        Alcotest.(check (option string)) "empty" None (Checkpoint.latest backend);
        let cost = Checkpoint.checkpoint backend ~name:"one" heap in
        ignore (Checkpoint.checkpoint backend ~name:"two" heap);
        Alcotest.(check (option string)) "latest" (Some "two")
          (Checkpoint.latest backend);
        (* 8 MiB at 100 MiB/s = 80 ms. *)
        Alcotest.(check bool) "cost" true
          (abs_float (Time.to_ms cost -. 80.0) < 1.0);
        Alcotest.(check int) "two snapshots stored" 2
          (List.length (Checkpoint.stored_names backend)));
    Alcotest.test_case "unknown snapshot raises Not_found" `Quick (fun () ->
        let heap = Pheap.create ~size:(Units.Size.mib 8) () in
        let backend = Checkpoint.create_backend () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Checkpoint.restore backend ~name:"ghost" heap);
             false
           with Not_found -> true));
  ]

(* --- Crash-safety sweep ------------------------------------------------------ *)

(* For any residual-window length, a failure cycle must end in either a
   full recovery with intact data or a *detected* loss — never silent
   corruption. Sweeping the window across the save path's duration
   exercises power loss at every protocol step. *)
let crash_safety_tests =
  [
    Alcotest.test_case "no silent corruption at any window length" `Slow
      (fun () ->
        let windows_ms = [ 0.05; 0.1; 0.3; 0.5; 1.0; 1.5; 2.0; 2.2; 2.4; 2.6; 3.0; 5.0; 20.0 ] in
        List.iter
          (fun window_ms ->
            let psu =
              {
                Wsp_power.Psu.name = Printf.sprintf "sweep-%.2fms" window_ms;
                rated = Units.Power.watts 500.0;
                residual_energy = Units.Energy.joules 1000.0;
                max_hold = Time.ms window_ms;
                collapse_tau = Time.ms 3.0;
                run_jitter = 0.0;
              }
            in
            let sys = System.create ~psu ~seed:5 () in
            let heap = System.heap sys in
            let words = 128 in
            let addr = Pheap.alloc heap (8 * words) in
            for i = 0 to words - 1 do
              Pheap.write_u64 heap ~addr:(addr + (8 * i)) (Int64.of_int (i + 1))
            done;
            Pheap.set_root heap addr;
            System.inject_power_failure sys;
            match System.power_on_and_restore sys with
            | System.Recovered _ ->
                (* Claimed recovery: the data must be bit-for-bit right. *)
                let heap' = System.attach_heap sys in
                Alcotest.(check int)
                  (Printf.sprintf "root at %.2fms" window_ms)
                  addr (Pheap.root heap');
                for i = 0 to words - 1 do
                  Alcotest.(check int64) "word" (Int64.of_int (i + 1))
                    (Pheap.read_u64 heap' ~addr:(addr + (8 * i)))
                done
            | System.Invalid_marker | System.No_image ->
                (* Detected loss: acceptable — the back end takes over. *)
                ())
          windows_ms);
  ]

let suite =
  [
    ("ext.blockstore", blockstore_tests);
    ("ext.block_kv", block_kv_tests);
    ("ext.scm", scm_tests);
    ("ext.nvdimm_array", nvdimm_array_tests);
    ("ext.hibernate", hibernate_tests);
    ("ext.process", process_tests);
    ("ext.checkpoint", checkpoint_tests);
    ("ext.crash_safety", crash_safety_tests);
  ]
