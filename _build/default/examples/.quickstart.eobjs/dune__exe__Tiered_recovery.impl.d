examples/tiered_recovery.ml: Checkpoint Hash_table Int64 Printf Time Units Wsp_core Wsp_sim Wsp_store
