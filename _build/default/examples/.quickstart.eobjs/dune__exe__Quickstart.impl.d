examples/quickstart.ml: Hash_table Int64 Printf Time Wsp_core Wsp_sim Wsp_store
