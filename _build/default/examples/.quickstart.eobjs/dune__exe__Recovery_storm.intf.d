examples/recovery_storm.mli:
