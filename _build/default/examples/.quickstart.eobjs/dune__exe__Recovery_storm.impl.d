examples/recovery_storm.ml: Fmt List Printf Recovery_storm Replication Time Units Wsp_cluster Wsp_sim
