examples/bank.ml: Btree Config Int64 List Pheap Printf Rng Time Units Wsp_core Wsp_nvheap Wsp_sim Wsp_store
