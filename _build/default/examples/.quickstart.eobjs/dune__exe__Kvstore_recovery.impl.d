examples/kvstore_recovery.ml: Config Hash_table Int64 Pheap Printf Time Units Wsp_core Wsp_nvheap Wsp_sim Wsp_store
