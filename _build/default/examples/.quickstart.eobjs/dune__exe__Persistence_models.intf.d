examples/persistence_models.mli:
