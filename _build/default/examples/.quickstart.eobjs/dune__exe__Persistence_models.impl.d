examples/persistence_models.ml: Config List Printf Time Workload Wsp_nvheap Wsp_sim Wsp_store
