examples/tiered_recovery.mli:
