examples/kvstore_recovery.mli:
