examples/bank.mli:
