examples/quickstart.mli:
