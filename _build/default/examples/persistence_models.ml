(* Comparing the five persistence configurations on the same workload.

   The same hash-table code runs unchanged under each model; only the
   heap configuration changes — exactly the comparison of §5.1. Watch
   where the time goes: flush-on-commit pays at every update, whereas
   flush-on-fail defers all of it to the (rare) failure.

   Run with: dune exec examples/persistence_models.exe *)

open Wsp_sim
open Wsp_nvheap
open Wsp_store

let () =
  let entries = 5000 and ops = 20000 in
  Printf.printf "%d-entry hash table, %d operations per run\n\n" entries ops;
  Printf.printf "%-10s %14s %14s %14s\n" "config" "read-only" "50% updates"
    "update-only";
  List.iter
    (fun config ->
      let per_op p =
        let r =
          Workload.run_hash_benchmark ~entries ~ops ~config ~update_prob:p
            ~seed:2 ()
        in
        Time.to_us r.Workload.per_op
      in
      Printf.printf "%-10s %11.3f us %11.3f us %11.3f us\n"
        config.Config.name (per_op 0.0) (per_op 0.5) (per_op 1.0))
    Config.all;
  print_newline ();
  print_endline
    "FoC  = flush-on-commit (durable without WSP, slow at every update)";
  print_endline
    "FoF  = flush-on-fail   (needs the WSP save path, free at runtime)";
  print_endline
    "STM/UL = redo-log software transactional memory / undo logging"
