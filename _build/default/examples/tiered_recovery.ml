(* Tiered recovery: NVRAM first, the back end last (§3.1).

   WSP does not replace the storage back end — it demotes it to the
   last resort. A server checkpoints to the back end periodically; after
   a power failure it restores locally from NVRAM in milliseconds, and
   only if the local image is unusable (here: a save deliberately broken
   by the ACPI-strawman strategy) does it fall back to the latest
   checkpoint, paying the transfer and losing the updates made since.

   Run with: dune exec examples/tiered_recovery.exe *)

open Wsp_sim
open Wsp_store
module System = Wsp_core.System

let updates = 2500
let checkpoint_every = 1000

let run_server ~strategy =
  let sys = System.create ~memory:(Units.Size.mib 32) ~busy:true ~strategy () in
  let heap = System.heap sys in
  let table = Hash_table.create ~buckets:4096 heap in
  let backend = Checkpoint.create_backend () in
  for i = 1 to updates do
    Hash_table.insert table ~key:(Int64.of_int i) ~value:(Int64.of_int (7 * i));
    if i mod checkpoint_every = 0 then begin
      let cost = Checkpoint.checkpoint backend ~name:(string_of_int i) heap in
      Printf.printf "  checkpoint at update %d (%s to back end)\n" i
        (Time.to_string cost)
    end
  done;
  System.inject_power_failure sys;
  let outcome = System.power_on_and_restore sys in
  Printf.printf "  power failure -> %s\n" (System.outcome_name outcome);
  let table, recovered_from =
    match outcome with
    | System.Recovered _ -> (Hash_table.attach (System.attach_heap sys), "NVRAM")
    | System.Invalid_marker | System.No_image -> (
        (* The local image is unusable: fall back to the back end. *)
        match Checkpoint.latest backend with
        | None -> failwith "no checkpoint either: data lost"
        | Some name ->
            let heap = System.heap sys in
            let cost = Checkpoint.restore backend ~name heap in
            Printf.printf "  restored checkpoint %s from back end (%s)\n" name
              (Time.to_string cost);
            (Hash_table.attach (System.attach_heap sys), "back end"))
  in
  let present = Hash_table.count table in
  Printf.printf "  %d/%d updates present (recovered from %s, %d lost)\n\n"
    present updates recovered_from (updates - present)

let () =
  print_endline "scenario 1: the WSP save path works (restore-path device reinit)";
  run_server ~strategy:System.Restore_reinit;
  print_endline
    "scenario 2: the save path is broken (ACPI strawman blows the window)";
  run_server ~strategy:System.Acpi_save
