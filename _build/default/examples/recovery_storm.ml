(* The data-center scenario that motivates the paper (§1–2).

   A rack-level power outage takes down a fleet of main-memory cache
   servers. Without NVRAM, every server must re-read its state through
   the shared storage back end — a "recovery storm" like Facebook's
   2.5-hour 2010 outage. With WSP, each server recovers locally and only
   fetches the updates it missed.

   Run with: dune exec examples/recovery_storm.exe *)

open Wsp_sim
open Wsp_cluster

let minutes t = Time.to_s t /. 60.0

let () =
  (* One server first: the §2 arithmetic. *)
  let single = Recovery_storm.run Recovery_storm.single_server in
  Printf.printf
    "one server, 256 GiB over a 0.5 GiB/s back end:\n\
    \  back-end recovery: %.1f min   WSP local recovery: %.0f s\n\n"
    (minutes single.Recovery_storm.full_recovery)
    (Time.to_s single.Recovery_storm.wsp_recovery);

  (* Now the rack. *)
  let p = Recovery_storm.default in
  let storm = Recovery_storm.run p in
  Printf.printf "rack outage: %d servers x %s, %.0f s of downtime\n"
    p.Recovery_storm.servers
    (Fmt.str "%a" Units.Size.pp p.Recovery_storm.state_per_server)
    (Time.to_s p.Recovery_storm.outage);
  Printf.printf "  back-end recovery: %.0f min for the fleet (%.0f GiB read)\n"
    (minutes storm.Recovery_storm.full_recovery)
    (storm.Recovery_storm.backend_bytes_full /. (1024. ** 3.));
  Printf.printf "  WSP recovery:      %.0f s (%.2f GiB of missed updates)\n"
    (Time.to_s storm.Recovery_storm.wsp_recovery)
    (storm.Recovery_storm.backend_bytes_wsp /. (1024. ** 3.));
  Printf.printf "  speedup:           %.0fx\n\n" storm.Recovery_storm.speedup;

  print_endline "fleet availability over time:";
  List.iter
    (fun fraction ->
      Printf.printf "  %3.0f%% online: back end %6.1f min | WSP %5.1f s\n"
        (100. *. fraction)
        (minutes (Recovery_storm.recovery_timeline p ~fraction `Full))
        (Time.to_s (Recovery_storm.recovery_timeline p ~fraction `Wsp)))
    [ 0.25; 0.5; 0.75; 1.0 ];

  (* §6: with NVRAM it pays to wait for a failed machine to return. *)
  print_newline ();
  print_endline "replica re-instantiation tradeoff (exponential outages, mean 60 s):";
  List.iter
    (fun d ->
      let a = Replication.assess Replication.default ~delay:(Time.s d) in
      Printf.printf "  wait %4.0f s: E[back-end] %6.1f GiB, E[exposure] %4.0f s\n" d
        (a.Replication.expected_backend_bytes /. (1024. ** 3.))
        (Time.to_s a.Replication.expected_exposure))
    [ 0.; 60.; 180.; 300. ]
