(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (one experiment per table/figure — see DESIGN.md's
   per-experiment index), plus Bechamel microbenchmarks of the
   simulator's hot paths.

   Usage:
     main.exe                 run every experiment at the scaled defaults
     main.exe table1 figure5  run selected experiments
     main.exe --full          paper-scale parameters (slow)
     main.exe --micro         also run the Bechamel microbenchmarks *)

open Wsp_sim

let usage () =
  print_endline "usage: main.exe [--full] [--micro] [experiment...]";
  print_endline "experiments:";
  List.iter
    (fun (e : Wsp_experiments.Registry.t) ->
      Printf.printf "  %-11s %s\n" e.name e.title)
    Wsp_experiments.Registry.all

(* --- Bechamel microbenchmarks of the simulator itself -------------- *)

let microbench_tests () =
  let open Bechamel in
  let nvram = Wsp_nvheap.Nvram.create ~size:(Units.Size.kib 64) () in
  let nvram_rw =
    Test.make ~name:"nvram-512-rw"
      (Staged.stage (fun () ->
           for i = 0 to 255 do
             Wsp_nvheap.Nvram.write_u64 nvram ~addr:(i * 8) (Int64.of_int i)
           done;
           for i = 0 to 255 do
             ignore (Wsp_nvheap.Nvram.read_u64 nvram ~addr:(i * 8))
           done))
  in
  let hash_ops config name =
    Test.make ~name
      (Staged.stage (fun () ->
           ignore
             (Wsp_store.Workload.run_hash_benchmark ~entries:512 ~ops:512
                ~buckets:1024 ~heap_size:(Units.Size.mib 8)
                ~config ~update_prob:0.5 ~seed:1 ())))
  in
  let avl_insert =
    Test.make ~name:"avl-1k-inserts"
      (Staged.stage (fun () ->
           let heap =
             Wsp_nvheap.Pheap.create ~size:(Units.Size.mib 1)
               ~log_size:(Units.Size.kib 64) ()
           in
           let tree = Wsp_store.Avl.create heap in
           for i = 1 to 1000 do
             Wsp_store.Avl.insert tree
               ~key:(Int64.of_int (i * 7919 mod 1009))
               ~value:(Int64.of_int i)
           done))
  in
  let save_cycle =
    Test.make ~name:"wsp-failure-cycle"
      (Staged.stage (fun () ->
           let sys = Wsp_core.System.create ~memory:(Units.Size.mib 1) () in
           ignore (Wsp_core.System.run_failure_cycle sys)))
  in
  [
    nvram_rw;
    hash_ops Wsp_nvheap.Config.fof "hash-512ops-fof";
    hash_ops Wsp_nvheap.Config.foc_stm "hash-512ops-foc-stm";
    avl_insert;
    save_cycle;
  ]

let run_microbenches () =
  let open Bechamel in
  print_newline ();
  print_endline "Bechamel microbenchmarks (wall-clock cost of the simulator)";
  print_endline "===========================================================";
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some (ns :: _) -> Printf.printf "  %-22s %12.0f ns/run\n" name ns
          | Some [] | None -> Printf.printf "  %-22s (no estimate)\n" name)
        results)
    (microbench_tests ())

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let micro = List.mem "--micro" args in
  let names = List.filter (fun a -> a <> "--full" && a <> "--micro") args in
  if List.mem "--help" names || List.mem "-h" names then usage ()
  else begin
    (match names with
    | [] -> Wsp_experiments.Registry.run_all ~full
    | names ->
        List.iter
          (fun name ->
            match Wsp_experiments.Registry.find name with
            | Some e -> e.run ~full
            | None ->
                Printf.printf "unknown experiment %S\n" name;
                usage ();
                exit 2)
          names);
    if micro then run_microbenches ()
  end
