# Convenience targets. `make bench` gates the microbenchmarks on the
# tier-1 build + test suite so a perf number is never reported for a
# broken tree; it writes BENCH_1.json next to this Makefile.

.PHONY: all build test bench clean

all: build

build:
	dune build

test: build
	dune runtest

bench: test
	dune exec bench/main.exe -- --micro --json

clean:
	dune clean
