# Convenience targets. `make bench` gates the microbenchmarks on the
# tier-1 build + test suite so a perf number is never reported for a
# broken tree; it writes BENCH_5.json next to this Makefile.

.PHONY: all build test check lint bench clean

all: build

build:
	dune build

test: build
	dune runtest

# Crash-consistency certification: every persistence configuration over
# every structure, plus the save-protocol sweep. Deterministic from the
# seed; exits non-zero on any violation.
check: build
	dune exec bin/wsp_sim.exe -- check --points 1000 --seed 42 --protocol

# Static persistency-ordering lint over every registered workload. The
# seed workloads are certified clean except for two known redundant-
# trailing-fence advisories, hence the R3 allowlist.
lint: build
	dune exec bin/wsp_sim.exe -- lint --expect R3

bench: test
	dune exec bench/main.exe -- --micro --json

clean:
	dune clean
