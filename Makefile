# Convenience targets. `make bench` gates the microbenchmarks on the
# tier-1 build + test suite so a perf number is never reported for a
# broken tree; it writes BENCH_10.json next to this Makefile.

.PHONY: all build test check lint race-lint bench shard shard-smoke \
  shard-migrate-smoke reloc-smoke ci-determinism clean

all: build

build:
	dune build

test: build
	dune runtest

# Crash-consistency certification: every persistence configuration over
# every structure, plus the save-protocol sweep. Deterministic from the
# seed; exits non-zero on any violation.
check: build
	dune exec bin/wsp_sim.exe -- check --points 1000 --seed 42 --protocol

# Static persistency-ordering lint over every registered workload. The
# seed workloads are certified clean except for two known redundant-
# trailing-fence advisories, hence the R3 allowlist.
lint: build
	dune exec bin/wsp_sim.exe -- lint --expect R3

# Cross-domain persistency race gate: the concurrent Delay-Free
# registry under the vector-clock rules R6-R9 (clean and racy, with
# the racy convictions allowlisted per structure), job-width JSON
# determinism, and the shard service's race lint — clean migration
# passes, the tombstone-first sabotage is convicted both statically
# (R8) and dynamically (crash sweep).
race-lint: build
	sh scripts/race_lint.sh

bench: test
	dune exec bench/main.exe -- --micro --json

# The sharded directory service at acceptance scale: 16 shards, a
# million closed-loop requests, a mid-run power failure and per-shard
# restore. Exits non-zero if any acknowledged write is lost.
shard: build
	dune exec bin/wsp_sim.exe -- shard --shards 16 --clients 1024 \
	  --queue-cap 1024 --requests 1000000 --keyspace 50000 --crash-at 500

# Bounded shard + storm gate: job-width JSON determinism, lossless
# mid-run crash/restore (plain-WSP and undo-logged), and a seed-
# deterministic 1500-node storm sweep.
shard-smoke: build
	sh scripts/shard_smoke.sh

# Live-topology gate: grow + shrink drain losslessly, a single shard's
# power failure spares the rest (and books the availability dip), the
# mid-migration crash sweep recovers every injected persistency event,
# and the combined worst case is job-width deterministic.
shard-migrate-smoke: build
	sh scripts/shard_migrate_smoke.sh

# Relocatable-image gate: image-shipping migration is golden-equal to
# the key drain (and job-width deterministic), the mid-migration crash
# sweep holds with shipping in flight, and the checker and static
# analyzer agree on the msync backend — clean registry cleared, broken
# fences convicted by both.
reloc-smoke: build
	sh scripts/reloc_smoke.sh

# Determinism gate: the checker's incremental engine must produce
# byte-identical JSON to the full-replay reference, lint must produce
# byte-identical JSON at any job width, and the record-once lint
# fan-out must not be slower in parallel (j4 wall <= 1.5x j1).
ci-determinism: build
	sh scripts/ci_determinism.sh

clean:
	dune clean
