# Convenience targets. `make bench` gates the microbenchmarks on the
# tier-1 build + test suite so a perf number is never reported for a
# broken tree; it writes BENCH_6.json next to this Makefile.

.PHONY: all build test check lint bench ci-determinism clean

all: build

build:
	dune build

test: build
	dune runtest

# Crash-consistency certification: every persistence configuration over
# every structure, plus the save-protocol sweep. Deterministic from the
# seed; exits non-zero on any violation.
check: build
	dune exec bin/wsp_sim.exe -- check --points 1000 --seed 42 --protocol

# Static persistency-ordering lint over every registered workload. The
# seed workloads are certified clean except for two known redundant-
# trailing-fence advisories, hence the R3 allowlist.
lint: build
	dune exec bin/wsp_sim.exe -- lint --expect R3

bench: test
	dune exec bench/main.exe -- --micro --json

# Determinism gate: the checker's incremental engine must produce
# byte-identical JSON to the full-replay reference, lint must produce
# byte-identical JSON at any job width, and the record-once lint
# fan-out must not be slower in parallel (j4 wall <= 1.5x j1).
ci-determinism: build
	sh scripts/ci_determinism.sh

clean:
	dune clean
